//! `dsa-tracebin/v1` — the compact columnar binary trace encoding.
//!
//! At fleet scale a JSONL trace is the wrong shape: a chaos soak emits
//! millions of events and the field names dominate the bytes. This
//! module stores the same [`Event`] stream column-wise instead of
//! row-wise, in CRC-guarded blocks modelled on `dsa-core`'s snapshot
//! format:
//!
//! ```text
//! file   := magic(8) version(u16 LE) block*
//! block  := kind(u8) len(u32 LE) payload[len] crc32(u32 LE)
//! ```
//!
//! The CRC covers `kind || len || payload`, so every single-bit flip
//! anywhere in a block (or its framing) is detected; a missing end
//! block reads as [`BinError::Truncated`]. Block kinds: `1` header
//! (producer string, informational), `2` events, `3` end-of-stream
//! (total event count, cross-checked on decode).
//!
//! An event block groups its events by variant ("kind"), one column
//! group per variant present:
//!
//! ```text
//! payload := n_events(varint)
//!            n_strings(varint) (len(varint) bytes)*      ; block-local table
//!            kind_tag(u8) * n_events                     ; emission order
//!            group*                                      ; ascending kind tag
//! group   := cycle-delta column (zigzag varint)          ; within the kind
//!            payload fields, event-major, fixed order
//! ```
//!
//! Cycles are delta-coded *within each kind column* as the zigzag of
//! the wrapping difference, which is lossless for arbitrary `u64`
//! pairs and near-free for the monotone cycle streams real runs
//! produce. PCs, loop ids and counts are LEB128 varints; enum fields
//! (`Stage`, `CacheKind`, ...) are one byte; free-vocabulary strings
//! (loop classes, rejection reasons, workload names, fault sites) are
//! varint indices into the block-local string table. Decoding interns
//! table strings process-wide ([`intern`]) so decoded events hold
//! `&'static str` like freshly emitted ones and compare equal.
//!
//! The golden binary trace is byte-exact-tested against
//! `crates/core/tests/golden/count_trace.trcb` and must stay ≥5x
//! smaller than its JSONL twin.

use std::collections::BTreeMap;
use std::io::{self, Write};

use crate::event::{CacheKind, CacheOutcome, Event, SpecKind, Stage};
use crate::TraceSink;

/// Version tag of the binary container (the `v1` in `dsa-tracebin/v1`).
pub const BIN_SCHEMA: &str = "dsa-tracebin/v1";

/// File magic: identifies a columnar trace (see [`looks_binary`]).
pub const MAGIC: [u8; 8] = *b"DSATRCB\0";

const VERSION: u16 = 1;

const BLOCK_HEADER: u8 = 1;
const BLOCK_EVENTS: u8 = 2;
const BLOCK_END: u8 = 3;

/// Events buffered per block by [`ColumnarWriter`]. Small enough to
/// bound memory on unbounded streams, large enough that the per-block
/// string table and framing amortize away.
pub const EVENTS_PER_BLOCK: usize = 4096;

/// Why a binary trace failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BinError {
    /// The stream ended before the end block (or mid-block).
    Truncated,
    /// The first 8 bytes are not [`MAGIC`].
    BadMagic,
    /// Container version newer than this reader.
    UnsupportedVersion(u16),
    /// A block's CRC-32 did not match its contents.
    ChecksumMismatch {
        /// Offset of the block's kind byte in the file.
        offset: usize,
    },
    /// Structurally invalid contents inside a CRC-valid frame.
    Malformed(String),
}

impl BinError {
    /// Stable kebab-case kind name (for reports and counters).
    pub fn kind_name(&self) -> &'static str {
        match self {
            BinError::Truncated => "truncated",
            BinError::BadMagic => "bad-magic",
            BinError::UnsupportedVersion(_) => "unsupported-version",
            BinError::ChecksumMismatch { .. } => "checksum-mismatch",
            BinError::Malformed(_) => "malformed",
        }
    }
}

impl std::fmt::Display for BinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BinError::Truncated => write!(f, "trace truncated before end block"),
            BinError::BadMagic => write!(f, "not a {BIN_SCHEMA} trace (bad magic)"),
            BinError::UnsupportedVersion(v) => write!(f, "unsupported container version {v}"),
            BinError::ChecksumMismatch { offset } => {
                write!(f, "block checksum mismatch at offset {offset}")
            }
            BinError::Malformed(why) => write!(f, "malformed trace: {why}"),
        }
    }
}

impl std::error::Error for BinError {}

/// True when `bytes` starts with the columnar-trace magic — the sniff
/// `trace_query` uses to pick a reader per file.
pub fn looks_binary(bytes: &[u8]) -> bool {
    bytes.len() >= MAGIC.len() && bytes[..MAGIC.len()] == MAGIC
}

// ---------------------------------------------------------------------
// Primitives shared with the metrics wire snapshot.
// ---------------------------------------------------------------------

/// CRC-32 (IEEE, reflected). Local copy: this crate is deliberately
/// zero-dependency and `dsa-core` (which owns the snapshot copy)
/// depends on us, not the reverse.
pub(crate) fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Appends `v` as a LEB128 varint.
pub(crate) fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// A bounds-checked cursor over a byte slice; every decode error is a
/// `String` the caller wraps in [`BinError::Malformed`].
pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.pos >= self.buf.len()
    }

    pub(crate) fn read_u8(&mut self) -> Result<u8, String> {
        let b = *self.buf.get(self.pos).ok_or("unexpected end of payload")?;
        self.pos += 1;
        Ok(b)
    }

    pub(crate) fn read_bytes(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self.pos.checked_add(n).ok_or("length overflow")?;
        let s = self.buf.get(self.pos..end).ok_or("unexpected end of payload")?;
        self.pos = end;
        Ok(s)
    }

    pub(crate) fn read_varint(&mut self) -> Result<u64, String> {
        let mut v: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.read_u8()?;
            if shift == 63 && byte > 1 {
                return Err("varint overflows u64".into());
            }
            v |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
            if shift > 63 {
                return Err("varint too long".into());
            }
        }
    }

    pub(crate) fn read_u32v(&mut self) -> Result<u32, String> {
        u32::try_from(self.read_varint()?).map_err(|_| "value exceeds u32".into())
    }

    fn read_bool(&mut self) -> Result<bool, String> {
        match self.read_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(format!("bad bool byte {b}")),
        }
    }
}

// ---------------------------------------------------------------------
// String interning.
// ---------------------------------------------------------------------

/// Interns `s`, returning a `&'static str` with the same content.
/// Decoded events must hold `&'static str` like freshly emitted ones;
/// the vocabulary is small and fixed (class/reason/site/workload
/// names), so the leaked pool stays bounded in practice.
pub fn intern(s: &str) -> &'static str {
    use std::collections::BTreeSet;
    use std::sync::{Mutex, OnceLock};
    static POOL: OnceLock<Mutex<BTreeSet<&'static str>>> = OnceLock::new();
    let pool = POOL.get_or_init(|| Mutex::new(BTreeSet::new()));
    let mut guard = match pool.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    if let Some(&existing) = guard.get(s) {
        return existing;
    }
    let leaked: &'static str = Box::leak(s.to_string().into_boxed_str());
    guard.insert(leaked);
    leaked
}

// ---------------------------------------------------------------------
// Encoding.
// ---------------------------------------------------------------------

const KINDS: usize = 31;

fn kind_tag(ev: &Event) -> u8 {
    match ev {
        Event::RunStarted { .. } => 0,
        Event::RunFinished { .. } => 1,
        Event::SimFault { .. } => 2,
        Event::LoopDetected { .. } => 3,
        Event::StageActivated { .. } => 4,
        Event::CacheAccess { .. } => 5,
        Event::DependencyVerdict { .. } => 6,
        Event::LoopClassified { .. } => 7,
        Event::LoopVectorized { .. } => 8,
        Event::LoopRejected { .. } => 9,
        Event::LoopRolledBack { .. } => 10,
        Event::LoopFinished { .. } => 11,
        Event::EnginePoisoned { .. } => 12,
        Event::FaultInjected { .. } => 13,
        Event::PartialChunk { .. } => 14,
        Event::SpeculationResolved { .. } => 15,
        Event::SupervisorRetry { .. } => 16,
        Event::WorkerPanicked { .. } => 17,
        Event::DeadlineExceeded { .. } => 18,
        Event::BreakerOpen { .. } => 19,
        Event::BreakerHalfOpen { .. } => 20,
        Event::BreakerClosed { .. } => 21,
        Event::JobAdmitted { .. } => 22,
        Event::JobShed { .. } => 23,
        Event::JobCompleted { .. } => 24,
        Event::SessionCheckpointed { .. } => 25,
        Event::SessionMigrated { .. } => 26,
        Event::ShardKilled { .. } => 27,
        Event::ShardRecovered { .. } => 28,
        Event::SnapshotRestored { .. } => 29,
        Event::SnapshotRejected { .. } => 30,
    }
}

fn stage_tag(s: Stage) -> u8 {
    // infallible: Stage::ALL contains every variant.
    Stage::ALL.iter().position(|&x| x == s).unwrap_or(0) as u8
}

fn stage_from_tag(t: u8) -> Result<Stage, String> {
    Stage::ALL.get(t as usize).copied().ok_or_else(|| format!("bad stage tag {t}"))
}

fn cache_tag(c: CacheKind) -> u8 {
    match c {
        CacheKind::Dsa => 0,
        CacheKind::Verification => 1,
        CacheKind::ArrayMap => 2,
    }
}

fn cache_from_tag(t: u8) -> Result<CacheKind, String> {
    match t {
        0 => Ok(CacheKind::Dsa),
        1 => Ok(CacheKind::Verification),
        2 => Ok(CacheKind::ArrayMap),
        _ => Err(format!("bad cache tag {t}")),
    }
}

fn outcome_tag(o: CacheOutcome) -> u8 {
    match o {
        CacheOutcome::Hit => 0,
        CacheOutcome::Miss => 1,
        CacheOutcome::Insert => 2,
        CacheOutcome::Evict => 3,
    }
}

fn outcome_from_tag(t: u8) -> Result<CacheOutcome, String> {
    match t {
        0 => Ok(CacheOutcome::Hit),
        1 => Ok(CacheOutcome::Miss),
        2 => Ok(CacheOutcome::Insert),
        3 => Ok(CacheOutcome::Evict),
        _ => Err(format!("bad cache-outcome tag {t}")),
    }
}

fn spec_tag(k: SpecKind) -> u8 {
    match k {
        SpecKind::Sentinel => 0,
        SpecKind::Conditional => 1,
    }
}

fn spec_from_tag(t: u8) -> Result<SpecKind, String> {
    match t {
        0 => Ok(SpecKind::Sentinel),
        1 => Ok(SpecKind::Conditional),
        _ => Err(format!("bad spec-kind tag {t}")),
    }
}

/// Block-local string table builder (first-use order, deduplicated).
#[derive(Default)]
struct StringTable {
    index: BTreeMap<String, u32>,
    list: Vec<String>,
}

impl StringTable {
    fn id(&mut self, s: &str) -> u32 {
        if let Some(&i) = self.index.get(s) {
            return i;
        }
        let i = self.list.len() as u32;
        self.list.push(s.to_string());
        self.index.insert(s.to_string(), i);
        i
    }
}

/// Serializes one block's worth of events into an event-block payload.
fn encode_block(events: &[Event]) -> Vec<u8> {
    let mut strings = StringTable::default();
    // Per-kind column buffers: cycles (delta within the kind) followed
    // by the fixed-order payload fields, event-major.
    let mut cols: Vec<Vec<u8>> = (0..KINDS).map(|_| Vec::new()).collect();
    let mut prev_cycle = [0u64; KINDS];
    let mut kinds = Vec::with_capacity(events.len());

    for ev in events {
        let tag = kind_tag(ev) as usize;
        kinds.push(tag as u8);
        let col = &mut cols[tag];
        let cycle = ev.cycle();
        let delta = cycle.wrapping_sub(prev_cycle[tag]) as i64;
        prev_cycle[tag] = cycle;
        put_varint(col, zigzag(delta));
        let mut put_str = |col: &mut Vec<u8>, s: &str| {
            let id = strings.id(s);
            put_varint(col, u64::from(id));
        };
        match *ev {
            Event::RunStarted { pc, .. } => put_varint(col, u64::from(pc)),
            Event::RunFinished { committed, halted, .. } => {
                put_varint(col, committed);
                col.push(u8::from(halted));
            }
            Event::SimFault { kind, pc, .. } => {
                put_str(col, kind);
                put_varint(col, u64::from(pc));
            }
            Event::LoopDetected { loop_id, end_pc, .. } => {
                put_varint(col, u64::from(loop_id));
                put_varint(col, u64::from(end_pc));
            }
            Event::StageActivated { stage, loop_id, dsa_cycles, .. } => {
                col.push(stage_tag(stage));
                put_varint(col, u64::from(loop_id));
                put_varint(col, dsa_cycles);
            }
            Event::CacheAccess { cache, outcome, loop_id, count, dsa_cycles, .. } => {
                col.push(cache_tag(cache));
                col.push(outcome_tag(outcome));
                put_varint(col, u64::from(loop_id));
                put_varint(col, u64::from(count));
                put_varint(col, dsa_cycles);
            }
            Event::DependencyVerdict { loop_id, pairs, distance, dsa_cycles, .. } => {
                put_varint(col, u64::from(loop_id));
                put_varint(col, u64::from(pairs));
                match distance {
                    None => col.push(0),
                    Some(d) => {
                        col.push(1);
                        put_varint(col, u64::from(d));
                    }
                }
                put_varint(col, dsa_cycles);
            }
            Event::LoopClassified { loop_id, class, .. } => {
                put_varint(col, u64::from(loop_id));
                put_str(col, class);
            }
            Event::LoopVectorized { loop_id, class, planned, peeled, .. } => {
                put_varint(col, u64::from(loop_id));
                put_str(col, class);
                put_varint(col, u64::from(planned));
                put_varint(col, u64::from(peeled));
            }
            Event::LoopRejected { loop_id, class, reason, .. }
            | Event::LoopRolledBack { loop_id, class, reason, .. } => {
                put_varint(col, u64::from(loop_id));
                put_str(col, class);
                put_str(col, reason);
            }
            Event::LoopFinished { loop_id, iters, .. } => {
                put_varint(col, u64::from(loop_id));
                put_varint(col, u64::from(iters));
            }
            Event::EnginePoisoned { during, expected, .. } => {
                put_str(col, during);
                put_str(col, expected);
            }
            Event::FaultInjected { site, .. } => put_str(col, site),
            Event::PartialChunk { loop_id, chunk_iters, dsa_cycles, .. } => {
                put_varint(col, u64::from(loop_id));
                put_varint(col, u64::from(chunk_iters));
                put_varint(col, dsa_cycles);
            }
            Event::SpeculationResolved { loop_id, kind, injected, used, discarded, .. } => {
                put_varint(col, u64::from(loop_id));
                col.push(spec_tag(kind));
                put_varint(col, injected);
                put_varint(col, used);
                put_varint(col, discarded);
            }
            Event::SupervisorRetry { workload, attempt, backoff_ms, .. } => {
                put_str(col, workload);
                put_varint(col, u64::from(attempt));
                put_varint(col, backoff_ms);
            }
            Event::WorkerPanicked { workload, .. } | Event::BreakerClosed { workload, .. } => {
                put_str(col, workload);
            }
            Event::DeadlineExceeded { workload, deadline_ms, .. } => {
                put_str(col, workload);
                put_varint(col, deadline_ms);
            }
            Event::BreakerOpen { workload, failures, .. } => {
                put_str(col, workload);
                put_varint(col, u64::from(failures));
            }
            Event::BreakerHalfOpen { workload, cooldown_ms, .. } => {
                put_str(col, workload);
                put_varint(col, cooldown_ms);
            }
            Event::JobAdmitted { job, shard, queue_depth, .. } => {
                put_varint(col, job);
                put_varint(col, u64::from(shard));
                put_varint(col, u64::from(queue_depth));
            }
            Event::JobShed { reason, .. } => put_str(col, reason),
            Event::JobCompleted { job, shard, cache_hit, migrations, latency_ms, .. } => {
                put_varint(col, job);
                put_varint(col, u64::from(shard));
                col.push(u8::from(cache_hit));
                put_varint(col, u64::from(migrations));
                put_varint(col, latency_ms);
            }
            Event::SessionCheckpointed { job, shard, bytes, commits, .. } => {
                put_varint(col, job);
                put_varint(col, u64::from(shard));
                put_varint(col, bytes);
                put_varint(col, commits);
            }
            Event::SessionMigrated { job, from_shard, .. } => {
                put_varint(col, job);
                put_varint(col, u64::from(from_shard));
            }
            Event::ShardKilled { shard, drained, .. } => {
                put_varint(col, u64::from(shard));
                put_varint(col, u64::from(drained));
            }
            Event::ShardRecovered { shard, .. } => put_varint(col, u64::from(shard)),
            Event::SnapshotRestored { bytes, cache_entries, .. } => {
                put_varint(col, bytes);
                put_varint(col, cache_entries);
            }
            Event::SnapshotRejected { kind, .. } => put_str(col, kind),
        }
    }

    let mut payload = Vec::with_capacity(64 + events.len() * 4);
    put_varint(&mut payload, events.len() as u64);
    put_varint(&mut payload, strings.list.len() as u64);
    for s in &strings.list {
        put_varint(&mut payload, s.len() as u64);
        payload.extend_from_slice(s.as_bytes());
    }
    payload.extend_from_slice(&kinds);
    for col in &cols {
        payload.extend_from_slice(col);
    }
    payload
}

/// Decodes one event of kind `tag` from its column. `cycle` is already
/// delta-decoded by the caller.
fn decode_event(
    tag: u8,
    cycle: u64,
    r: &mut Reader<'_>,
    strings: &[&'static str],
) -> Result<Event, String> {
    let get_str = |r: &mut Reader<'_>| -> Result<&'static str, String> {
        let i = r.read_varint()? as usize;
        strings.get(i).copied().ok_or_else(|| format!("string index {i} out of range"))
    };
    Ok(match tag {
        0 => Event::RunStarted { pc: r.read_u32v()?, cycle },
        1 => Event::RunFinished { cycle, committed: r.read_varint()?, halted: r.read_bool()? },
        2 => Event::SimFault { kind: get_str(r)?, pc: r.read_u32v()?, cycle },
        3 => Event::LoopDetected { loop_id: r.read_u32v()?, end_pc: r.read_u32v()?, cycle },
        4 => Event::StageActivated {
            stage: stage_from_tag(r.read_u8()?)?,
            loop_id: r.read_u32v()?,
            dsa_cycles: r.read_varint()?,
            cycle,
        },
        5 => Event::CacheAccess {
            cache: cache_from_tag(r.read_u8()?)?,
            outcome: outcome_from_tag(r.read_u8()?)?,
            loop_id: r.read_u32v()?,
            count: r.read_u32v()?,
            dsa_cycles: r.read_varint()?,
            cycle,
        },
        6 => Event::DependencyVerdict {
            loop_id: r.read_u32v()?,
            pairs: r.read_u32v()?,
            distance: match r.read_u8()? {
                0 => None,
                1 => Some(r.read_u32v()?),
                b => return Err(format!("bad option byte {b}")),
            },
            dsa_cycles: r.read_varint()?,
            cycle,
        },
        7 => Event::LoopClassified { loop_id: r.read_u32v()?, class: get_str(r)?, cycle },
        8 => Event::LoopVectorized {
            loop_id: r.read_u32v()?,
            class: get_str(r)?,
            planned: r.read_u32v()?,
            peeled: r.read_u32v()?,
            cycle,
        },
        9 => Event::LoopRejected {
            loop_id: r.read_u32v()?,
            class: get_str(r)?,
            reason: get_str(r)?,
            cycle,
        },
        10 => Event::LoopRolledBack {
            loop_id: r.read_u32v()?,
            class: get_str(r)?,
            reason: get_str(r)?,
            cycle,
        },
        11 => Event::LoopFinished { loop_id: r.read_u32v()?, iters: r.read_u32v()?, cycle },
        12 => Event::EnginePoisoned { during: get_str(r)?, expected: get_str(r)?, cycle },
        13 => Event::FaultInjected { site: get_str(r)?, cycle },
        14 => Event::PartialChunk {
            loop_id: r.read_u32v()?,
            chunk_iters: r.read_u32v()?,
            dsa_cycles: r.read_varint()?,
            cycle,
        },
        15 => Event::SpeculationResolved {
            loop_id: r.read_u32v()?,
            kind: spec_from_tag(r.read_u8()?)?,
            injected: r.read_varint()?,
            used: r.read_varint()?,
            discarded: r.read_varint()?,
            cycle,
        },
        16 => Event::SupervisorRetry {
            workload: get_str(r)?,
            attempt: r.read_u32v()?,
            backoff_ms: r.read_varint()?,
            cycle,
        },
        17 => Event::WorkerPanicked { workload: get_str(r)?, cycle },
        18 => Event::DeadlineExceeded {
            workload: get_str(r)?,
            deadline_ms: r.read_varint()?,
            cycle,
        },
        19 => Event::BreakerOpen { workload: get_str(r)?, failures: r.read_u32v()?, cycle },
        20 => Event::BreakerHalfOpen {
            workload: get_str(r)?,
            cooldown_ms: r.read_varint()?,
            cycle,
        },
        21 => Event::BreakerClosed { workload: get_str(r)?, cycle },
        22 => Event::JobAdmitted {
            job: r.read_varint()?,
            shard: r.read_u32v()?,
            queue_depth: r.read_u32v()?,
            cycle,
        },
        23 => Event::JobShed { reason: get_str(r)?, cycle },
        24 => Event::JobCompleted {
            job: r.read_varint()?,
            shard: r.read_u32v()?,
            cache_hit: r.read_bool()?,
            migrations: r.read_u32v()?,
            latency_ms: r.read_varint()?,
            cycle,
        },
        25 => Event::SessionCheckpointed {
            job: r.read_varint()?,
            shard: r.read_u32v()?,
            bytes: r.read_varint()?,
            commits: r.read_varint()?,
            cycle,
        },
        26 => Event::SessionMigrated { job: r.read_varint()?, from_shard: r.read_u32v()?, cycle },
        27 => Event::ShardKilled { shard: r.read_u32v()?, drained: r.read_u32v()?, cycle },
        28 => Event::ShardRecovered { shard: r.read_u32v()?, cycle },
        29 => Event::SnapshotRestored {
            bytes: r.read_varint()?,
            cache_entries: r.read_varint()?,
            cycle,
        },
        30 => Event::SnapshotRejected { kind: get_str(r)?, cycle },
        t => return Err(format!("unknown event kind tag {t}")),
    })
}

fn decode_block(payload: &[u8], out: &mut Vec<Event>) -> Result<(), BinError> {
    let malformed = |e: String| BinError::Malformed(e);
    let mut r = Reader::new(payload);
    let n_events = r.read_varint().map_err(malformed)? as usize;
    if n_events > payload.len() {
        // A kind byte per event is the floor; reject absurd counts
        // before allocating.
        return Err(BinError::Malformed(format!("event count {n_events} exceeds payload")));
    }
    let n_strings = r.read_varint().map_err(malformed)? as usize;
    if n_strings > payload.len() {
        return Err(BinError::Malformed(format!("string count {n_strings} exceeds payload")));
    }
    let mut strings = Vec::with_capacity(n_strings);
    for _ in 0..n_strings {
        let len = r.read_varint().map_err(malformed)? as usize;
        let bytes = r.read_bytes(len).map_err(malformed)?;
        let s = std::str::from_utf8(bytes)
            .map_err(|_| BinError::Malformed("string table entry is not UTF-8".into()))?;
        strings.push(intern(s));
    }
    let kinds = r.read_bytes(n_events).map_err(malformed)?.to_vec();
    let mut counts = [0usize; KINDS];
    for &k in &kinds {
        let Some(c) = counts.get_mut(k as usize) else {
            return Err(BinError::Malformed(format!("unknown event kind tag {k}")));
        };
        *c += 1;
    }
    // Decode each kind's column group in ascending-tag order, then
    // re-interleave by walking the kind stream.
    let mut per_kind: Vec<std::collections::VecDeque<Event>> =
        (0..KINDS).map(|_| std::collections::VecDeque::new()).collect();
    for tag in 0..KINDS {
        let mut prev = 0u64;
        for _ in 0..counts[tag] {
            let delta = unzigzag(r.read_varint().map_err(malformed)?);
            let cycle = prev.wrapping_add(delta as u64);
            prev = cycle;
            let ev = decode_event(tag as u8, cycle, &mut r, &strings).map_err(malformed)?;
            per_kind[tag].push_back(ev);
        }
    }
    if !r.is_empty() {
        return Err(BinError::Malformed("trailing bytes in event block".into()));
    }
    for k in kinds {
        // infallible by construction: counts[k] events were pushed.
        match per_kind[k as usize].pop_front() {
            Some(ev) => out.push(ev),
            None => return Err(BinError::Malformed("kind stream / column disagreement".into())),
        }
    }
    Ok(())
}

/// Encodes a complete event stream as one `dsa-tracebin/v1` document.
pub fn encode(events: &[Event]) -> Vec<u8> {
    let mut out = Vec::with_capacity(events.len() * 8 + 64);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    push_block(&mut out, BLOCK_HEADER, BIN_SCHEMA.as_bytes());
    for chunk in events.chunks(EVENTS_PER_BLOCK) {
        let payload = encode_block(chunk);
        push_block(&mut out, BLOCK_EVENTS, &payload);
    }
    let mut end = Vec::new();
    put_varint(&mut end, events.len() as u64);
    push_block(&mut out, BLOCK_END, &end);
    out
}

fn push_block(out: &mut Vec<u8>, kind: u8, payload: &[u8]) {
    let start = out.len();
    out.push(kind);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    let crc = crc32(&out[start..]);
    out.extend_from_slice(&crc.to_le_bytes());
}

/// Decodes a `dsa-tracebin/v1` document back into its event stream.
/// Lossless inverse of [`encode`] (and of [`ColumnarWriter`] output).
pub fn decode(bytes: &[u8]) -> Result<Vec<Event>, BinError> {
    if bytes.len() < MAGIC.len() + 2 {
        return Err(if looks_binary(bytes) { BinError::Truncated } else { BinError::BadMagic });
    }
    if !looks_binary(bytes) {
        return Err(BinError::BadMagic);
    }
    let version = u16::from_le_bytes([bytes[8], bytes[9]]);
    if version != VERSION {
        return Err(BinError::UnsupportedVersion(version));
    }
    let mut pos = MAGIC.len() + 2;
    let mut events = Vec::new();
    let mut saw_header = false;
    loop {
        if pos == bytes.len() {
            // Stream ended without an end block.
            return Err(BinError::Truncated);
        }
        if bytes.len() - pos < 5 {
            return Err(BinError::Truncated);
        }
        let kind = bytes[pos];
        let len = u32::from_le_bytes([bytes[pos + 1], bytes[pos + 2], bytes[pos + 3], bytes[pos + 4]])
            as usize;
        let payload_start = pos + 5;
        let crc_start = match payload_start.checked_add(len) {
            Some(s) => s,
            None => return Err(BinError::Truncated),
        };
        if bytes.len() < crc_start + 4 {
            return Err(BinError::Truncated);
        }
        let want = u32::from_le_bytes([
            bytes[crc_start],
            bytes[crc_start + 1],
            bytes[crc_start + 2],
            bytes[crc_start + 3],
        ]);
        if crc32(&bytes[pos..crc_start]) != want {
            return Err(BinError::ChecksumMismatch { offset: pos });
        }
        let payload = &bytes[payload_start..crc_start];
        match kind {
            BLOCK_HEADER => {
                saw_header = true;
            }
            BLOCK_EVENTS => decode_block(payload, &mut events)?,
            BLOCK_END => {
                let mut r = Reader::new(payload);
                let total = r.read_varint().map_err(BinError::Malformed)?;
                if total != events.len() as u64 {
                    return Err(BinError::Malformed(format!(
                        "end block claims {total} events, decoded {}",
                        events.len()
                    )));
                }
                if crc_start + 4 != bytes.len() {
                    return Err(BinError::Malformed("bytes after end block".into()));
                }
                if !saw_header {
                    return Err(BinError::Malformed("missing header block".into()));
                }
                return Ok(events);
            }
            k => return Err(BinError::Malformed(format!("unknown block kind {k}"))),
        }
        pos = crc_start + 4;
    }
}

// ---------------------------------------------------------------------
// Streaming writer.
// ---------------------------------------------------------------------

/// A [`TraceSink`] streaming `dsa-tracebin/v1` to any [`Write`]: the
/// binary twin of [`crate::JsonlSink`]. Events buffer in blocks of
/// [`EVENTS_PER_BLOCK`]; `finish` flushes the tail block and writes the
/// end block. IO errors latch (the trace must never abort a
/// simulation) and surface through [`ColumnarWriter::take_error`].
pub struct ColumnarWriter<W: Write> {
    out: W,
    buf: Vec<Event>,
    started: bool,
    finished: bool,
    total: u64,
    error: Option<io::Error>,
}

impl<W: Write> ColumnarWriter<W> {
    /// A writer targeting `out`. Nothing is written until the first
    /// flush (or `finish`, which always produces a valid — possibly
    /// empty — document).
    pub fn new(out: W) -> ColumnarWriter<W> {
        ColumnarWriter { out, buf: Vec::new(), started: false, finished: false, total: 0, error: None }
    }

    fn write_all(&mut self, bytes: &[u8]) {
        if self.error.is_some() {
            return;
        }
        if let Err(e) = self.out.write_all(bytes) {
            self.error = Some(e);
        }
    }

    fn start(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        let mut head = Vec::with_capacity(32);
        head.extend_from_slice(&MAGIC);
        head.extend_from_slice(&VERSION.to_le_bytes());
        push_block(&mut head, BLOCK_HEADER, BIN_SCHEMA.as_bytes());
        self.write_all(&head);
    }

    fn flush_block(&mut self) {
        if self.buf.is_empty() {
            return;
        }
        self.start();
        let payload = encode_block(&self.buf);
        let mut framed = Vec::with_capacity(payload.len() + 16);
        push_block(&mut framed, BLOCK_EVENTS, &payload);
        self.write_all(&framed);
        self.total += self.buf.len() as u64;
        self.buf.clear();
    }

    /// The first latched IO error, if any (taking it clears the latch).
    pub fn take_error(&mut self) -> Option<io::Error> {
        self.error.take()
    }

    /// Consumes the writer, returning the underlying output.
    pub fn into_inner(self) -> W {
        self.out
    }
}

impl ColumnarWriter<io::BufWriter<std::fs::File>> {
    /// A writer creating (truncating) the file at `path`.
    pub fn create(path: &str) -> io::Result<ColumnarWriter<io::BufWriter<std::fs::File>>> {
        Ok(ColumnarWriter::new(io::BufWriter::new(std::fs::File::create(path)?)))
    }
}

impl<W: Write> TraceSink for ColumnarWriter<W> {
    fn record(&mut self, ev: &Event) {
        if self.finished {
            return;
        }
        self.buf.push(*ev);
        if self.buf.len() >= EVENTS_PER_BLOCK {
            self.flush_block();
        }
    }

    fn finish(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        self.flush_block();
        self.start();
        let mut end = Vec::new();
        put_varint(&mut end, self.total);
        let mut framed = Vec::new();
        push_block(&mut framed, BLOCK_END, &end);
        self.write_all(&framed);
        if self.error.is_none() {
            if let Err(e) = self.out.flush() {
                self.error = Some(e);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<Event> {
        vec![
            Event::RunStarted { pc: 0, cycle: 0 },
            Event::LoopDetected { loop_id: 64, end_pc: 96, cycle: 120 },
            Event::StageActivated { stage: Stage::LoopDetection, loop_id: 64, dsa_cycles: 1, cycle: 121 },
            Event::CacheAccess {
                cache: CacheKind::Dsa,
                outcome: CacheOutcome::Miss,
                loop_id: 64,
                count: 1,
                dsa_cycles: 2,
                cycle: 121,
            },
            Event::DependencyVerdict { loop_id: 64, pairs: 2, distance: None, dsa_cycles: 6, cycle: 300 },
            Event::DependencyVerdict { loop_id: 64, pairs: 2, distance: Some(4), dsa_cycles: 6, cycle: 310 },
            Event::LoopClassified { loop_id: 64, class: "count", cycle: 311 },
            Event::LoopVectorized { loop_id: 64, class: "count", planned: 96, peeled: 2, cycle: 320 },
            Event::SpeculationResolved {
                kind: SpecKind::Sentinel,
                loop_id: 64,
                injected: 128,
                used: 96,
                discarded: 32,
                cycle: 900,
            },
            Event::JobCompleted { job: 7, shard: 2, cache_hit: true, migrations: 1, latency_ms: 12, cycle: 0 },
            Event::SnapshotRejected { kind: "bad-crc", cycle: 0 },
            Event::RunFinished { cycle: 1000, committed: 512, halted: true },
        ]
    }

    #[test]
    fn round_trip_preserves_events() {
        let events = sample_events();
        let bytes = encode(&events);
        let back = decode(&bytes).expect("decode");
        assert_eq!(back, events);
    }

    #[test]
    fn round_trip_empty_stream() {
        let bytes = encode(&[]);
        assert!(looks_binary(&bytes));
        assert_eq!(decode(&bytes).expect("decode"), Vec::<Event>::new());
    }

    #[test]
    fn writer_matches_one_shot_encode() {
        let events = sample_events();
        let mut w = ColumnarWriter::new(Vec::new());
        for ev in &events {
            w.record(ev);
        }
        w.finish();
        assert!(w.take_error().is_none());
        assert_eq!(w.into_inner(), encode(&events));
    }

    #[test]
    fn writer_splits_blocks_and_still_round_trips() {
        // Force multiple blocks through the streaming writer.
        let mut events = Vec::new();
        for i in 0..(EVENTS_PER_BLOCK as u64 * 2 + 17) {
            events.push(Event::StageActivated {
                stage: Stage::ALL[(i % 6) as usize],
                loop_id: (i % 13) as u32,
                dsa_cycles: i % 7,
                cycle: i * 3,
            });
        }
        let mut w = ColumnarWriter::new(Vec::new());
        for ev in &events {
            w.record(ev);
        }
        w.finish();
        let bytes = w.into_inner();
        assert_eq!(decode(&bytes).expect("decode"), events);
    }

    #[test]
    fn non_monotone_and_extreme_cycles_survive() {
        let events = vec![
            Event::ShardKilled { shard: 1, drained: 3, cycle: u64::MAX },
            Event::ShardKilled { shard: 1, drained: 0, cycle: 0 },
            Event::ShardKilled { shard: 2, drained: 9, cycle: u64::MAX / 2 },
        ];
        let bytes = encode(&events);
        assert_eq!(decode(&bytes).expect("decode"), events);
    }

    #[test]
    fn truncation_is_detected() {
        let bytes = encode(&sample_events());
        for cut in [0, 4, 9, 12, bytes.len() / 2, bytes.len() - 1] {
            let err = decode(&bytes[..cut]).expect_err("truncated trace must not decode");
            assert!(
                matches!(err, BinError::Truncated | BinError::BadMagic),
                "cut at {cut}: unexpected {err:?}"
            );
        }
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let bytes = encode(&sample_events());
        let original = decode(&bytes).expect("decode");
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut bad = bytes.clone();
                bad[byte] ^= 1 << bit;
                match decode(&bad) {
                    Err(_) => {}
                    Ok(events) => panic!(
                        "bit flip at byte {byte} bit {bit} decoded silently ({} events vs {})",
                        events.len(),
                        original.len()
                    ),
                }
            }
        }
    }

    #[test]
    fn interning_yields_equal_static_strs() {
        let a = intern("count");
        let b = intern(&String::from("count"));
        assert_eq!(a, b);
        assert!(std::ptr::eq(a, b), "interned copies must share storage");
    }

    #[test]
    fn binary_is_much_smaller_than_jsonl() {
        let mut events = Vec::new();
        for i in 0..500u64 {
            events.push(Event::StageActivated {
                stage: Stage::ALL[(i % 6) as usize],
                loop_id: (i % 13) as u32,
                dsa_cycles: i % 7,
                cycle: i * 11,
            });
        }
        let jsonl: usize = events.iter().map(|e| e.to_json_line().len() + 1).sum();
        let bin = encode(&events).len();
        assert!(bin * 5 <= jsonl, "binary {bin} bytes vs jsonl {jsonl} bytes: < 5x");
    }
}
