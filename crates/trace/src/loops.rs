//! The per-loop telemetry sink backing `inspect`'s loop table: one row
//! per static loop, folded live from the event stream.

use std::collections::BTreeMap;

use crate::event::Event;
use crate::TraceSink;

/// Aggregated lifecycle telemetry for one static loop.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LoopRow {
    /// Loop id (branch-target PC).
    pub loop_id: u32,
    /// Class name once classified (empty until then).
    pub class: String,
    /// Detection trips (taken backward branches that probed the DSA).
    pub detections: u64,
    /// Times the loop's remainder was handed to the NEON engine.
    pub vectorized: u64,
    /// Iterations that ran under vector coverage.
    pub covered_iters: u64,
    /// Rejections, and the most recent rejection reason.
    pub rejections: u64,
    /// Last rejection reason ("-" if never rejected).
    pub last_rejection: &'static str,
    /// Rollbacks charged to this loop.
    pub rollbacks: u64,
    /// DSA-side cycles attributed to this loop's events.
    pub dsa_cycles: u64,
}

impl LoopRow {
    fn new(loop_id: u32) -> LoopRow {
        LoopRow { loop_id, last_rejection: "-", ..LoopRow::default() }
    }
}

/// A [`TraceSink`] producing the per-loop table.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LoopTableSink {
    rows: BTreeMap<u32, LoopRow>,
}

impl LoopTableSink {
    /// An empty table.
    pub fn new() -> LoopTableSink {
        LoopTableSink::default()
    }

    /// Rows in loop-id order.
    pub fn rows(&self) -> impl Iterator<Item = &LoopRow> {
        self.rows.values()
    }

    /// True when no loop was ever detected.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn row(&mut self, loop_id: u32) -> &mut LoopRow {
        self.rows.entry(loop_id).or_insert_with(|| LoopRow::new(loop_id))
    }
}

impl TraceSink for LoopTableSink {
    fn record(&mut self, ev: &Event) {
        let Some(loop_id) = ev.loop_id() else { return };
        let dsa_cycles = ev.dsa_cycles();
        let row = self.row(loop_id);
        row.dsa_cycles += dsa_cycles;
        match *ev {
            Event::LoopDetected { .. } => row.detections += 1,
            Event::LoopClassified { class, .. } => row.class = class.to_string(),
            Event::LoopVectorized { class, .. } => {
                row.vectorized += 1;
                if row.class.is_empty() {
                    row.class = class.to_string();
                }
            }
            Event::LoopFinished { iters, .. } => row.covered_iters += iters as u64,
            Event::LoopRejected { class, reason, .. } => {
                row.rejections += 1;
                row.last_rejection = reason;
                if row.class.is_empty() {
                    row.class = class.to_string();
                }
            }
            Event::LoopRolledBack { .. } => row.rollbacks += 1,
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn folds_lifecycle_into_rows() {
        let mut t = LoopTableSink::new();
        t.record(&Event::LoopDetected { loop_id: 12, end_pc: 40, cycle: 5 });
        t.record(&Event::LoopClassified { loop_id: 12, class: "count", cycle: 9 });
        t.record(&Event::LoopVectorized { loop_id: 12, class: "count", planned: 20, peeled: 0, cycle: 10 });
        t.record(&Event::LoopFinished { loop_id: 12, iters: 24, cycle: 90 });
        t.record(&Event::LoopDetected { loop_id: 30, end_pc: 44, cycle: 100 });
        t.record(&Event::LoopRejected { loop_id: 30, class: "unknown", reason: "irregular-stride", cycle: 120 });
        t.record(&Event::RunFinished { cycle: 200, committed: 10, halted: true });

        let rows: Vec<&LoopRow> = t.rows().collect();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].loop_id, 12);
        assert_eq!(rows[0].class, "count");
        assert_eq!(rows[0].covered_iters, 24);
        assert_eq!(rows[0].last_rejection, "-");
        assert_eq!(rows[1].rejections, 1);
        assert_eq!(rows[1].last_rejection, "irregular-stride");
    }

    #[test]
    fn attributes_dsa_cycles_per_loop() {
        let mut t = LoopTableSink::new();
        t.record(&Event::StageActivated {
            stage: crate::Stage::StoreIdExecution,
            loop_id: 3,
            dsa_cycles: 7,
            cycle: 1,
        });
        t.record(&Event::PartialChunk { loop_id: 3, chunk_iters: 2, dsa_cycles: 3, cycle: 2 });
        assert_eq!(t.rows().next().expect("row").dsa_cycles, 10);
    }
}
