//! The typed telemetry vocabulary: everything the DSA and the simulator
//! can report about a run, as plain `Copy`-ish data with stable names.

use std::fmt::Write as _;

/// Version tag written in the JSONL header record and checked by the
/// schema validator. Bump on any breaking change to event field names.
pub const SCHEMA: &str = "dsa-trace/v1";

/// The six stages of the paper's detection state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Stage {
    /// Stage 1 — a taken backward branch probes the DSA cache.
    LoopDetection,
    /// Stage 2 — iteration profiling into the Verification Cache.
    DataCollection,
    /// Stage 3 — stream matching + CIDP verdict.
    DependencyAnalysis,
    /// Stage 4 — template stored, pipeline flushed, SIMD injected.
    StoreIdExecution,
    /// Stage 5 — conditional-loop Array-Map mapping.
    Mapping,
    /// Stage 6 — speculative select / sentinel range resolution.
    SpeculativeExecution,
}

impl Stage {
    /// Every stage, in pipeline order.
    pub const ALL: [Stage; 6] = [
        Stage::LoopDetection,
        Stage::DataCollection,
        Stage::DependencyAnalysis,
        Stage::StoreIdExecution,
        Stage::Mapping,
        Stage::SpeculativeExecution,
    ];

    /// Stable kebab-case name (JSONL field value).
    pub fn name(self) -> &'static str {
        match self {
            Stage::LoopDetection => "loop-detection",
            Stage::DataCollection => "data-collection",
            Stage::DependencyAnalysis => "dependency-analysis",
            Stage::StoreIdExecution => "store-id-execution",
            Stage::Mapping => "mapping",
            Stage::SpeculativeExecution => "speculative-execution",
        }
    }

    /// Inverse of [`Stage::name`] (used by the JSONL/binary readers).
    pub fn from_name(name: &str) -> Option<Stage> {
        Stage::ALL.iter().copied().find(|s| s.name() == name)
    }
}

/// Which private DSA memory a [`Event::CacheAccess`] touched.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CacheKind {
    /// The 8 KB verified-loop store.
    Dsa,
    /// The 1 KB Verification Cache (iteration addresses).
    Verification,
    /// The 128-bit Array Maps (conditional-loop lane masks).
    ArrayMap,
}

impl CacheKind {
    /// Stable kebab-case name.
    pub fn name(self) -> &'static str {
        match self {
            CacheKind::Dsa => "dsa-cache",
            CacheKind::Verification => "verification-cache",
            CacheKind::ArrayMap => "array-map",
        }
    }

    /// Inverse of [`CacheKind::name`].
    pub fn from_name(name: &str) -> Option<CacheKind> {
        [CacheKind::Dsa, CacheKind::Verification, CacheKind::ArrayMap]
            .into_iter()
            .find(|c| c.name() == name)
    }
}

/// What a cache access did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CacheOutcome {
    /// Lookup found the entry.
    Hit,
    /// Lookup missed.
    Miss,
    /// Entry written (verdict stored, addresses recorded).
    Insert,
    /// Entries displaced to make room.
    Evict,
}

impl CacheOutcome {
    /// Stable name.
    pub fn name(self) -> &'static str {
        match self {
            CacheOutcome::Hit => "hit",
            CacheOutcome::Miss => "miss",
            CacheOutcome::Insert => "insert",
            CacheOutcome::Evict => "evict",
        }
    }

    /// Inverse of [`CacheOutcome::name`].
    pub fn from_name(name: &str) -> Option<CacheOutcome> {
        [CacheOutcome::Hit, CacheOutcome::Miss, CacheOutcome::Insert, CacheOutcome::Evict]
            .into_iter()
            .find(|o| o.name() == name)
    }
}

/// Which speculative mechanism a [`Event::SpeculationResolved`] closes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpecKind {
    /// Sentinel-loop block speculation (§4.6.5).
    Sentinel,
    /// Conditional-loop window speculation (Array Maps).
    Conditional,
}

impl SpecKind {
    /// Stable name.
    pub fn name(self) -> &'static str {
        match self {
            SpecKind::Sentinel => "sentinel",
            SpecKind::Conditional => "conditional",
        }
    }

    /// Inverse of [`SpecKind::name`].
    pub fn from_name(name: &str) -> Option<SpecKind> {
        [SpecKind::Sentinel, SpecKind::Conditional].into_iter().find(|k| k.name() == name)
    }
}

/// One telemetry event. Every variant carries `cycle` — the core cycle
/// count at emission — so exporters can place it on the run's timeline.
/// String fields are `&'static str` drawn from fixed vocabularies
/// (loop-class names, rejection reasons, fault-site names), which keeps
/// events `Copy`-cheap and the schema enumerable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// Simulation began.
    RunStarted {
        /// Initial program counter.
        pc: u32,
        /// Core cycle (0 on a fresh simulator).
        cycle: u64,
    },
    /// Simulation finished (halt or watchdog).
    RunFinished {
        /// Total core cycles.
        cycle: u64,
        /// Committed instructions.
        committed: u64,
        /// Whether the program reached `halt`.
        halted: bool,
    },
    /// The simulator failed: watchdog expiry or an executor error.
    SimFault {
        /// Stable error-kind name.
        kind: &'static str,
        /// PC at the failure.
        pc: u32,
        /// Core cycle.
        cycle: u64,
    },
    /// Loop Detection saw a taken backward branch.
    LoopDetected {
        /// Loop ID (branch-target PC).
        loop_id: u32,
        /// PC of the closing branch.
        end_pc: u32,
        /// Core cycle.
        cycle: u64,
    },
    /// A detection stage did one unit of work. `dsa_cycles` is the
    /// DSA-side latency charged at this activation (0 when the work is
    /// charged by a co-located [`Event::CacheAccess`] /
    /// [`Event::DependencyVerdict`] instead).
    StageActivated {
        /// The stage.
        stage: Stage,
        /// Loop being analysed.
        loop_id: u32,
        /// DSA-side cycles charged here.
        dsa_cycles: u64,
        /// Core cycle.
        cycle: u64,
    },
    /// One access (or batch) to a DSA-private memory.
    CacheAccess {
        /// Which structure.
        cache: CacheKind,
        /// What happened.
        outcome: CacheOutcome,
        /// Loop the access served.
        loop_id: u32,
        /// Accesses in the batch (≥ 1).
        count: u32,
        /// DSA-side cycles charged for the batch.
        dsa_cycles: u64,
        /// Core cycle.
        cycle: u64,
    },
    /// CIDP produced a verdict over a loop's stream pairs.
    DependencyVerdict {
        /// Loop analysed.
        loop_id: u32,
        /// Write×read stream pairs evaluated.
        pairs: u32,
        /// Predicted dependency distance; `None` = no dependency.
        distance: Option<u32>,
        /// DSA-side cycles charged for the evaluation.
        dsa_cycles: u64,
        /// Core cycle.
        cycle: u64,
    },
    /// The loop's class was determined (census entry written).
    LoopClassified {
        /// The loop.
        loop_id: u32,
        /// Loop-class name.
        class: &'static str,
        /// Core cycle.
        cycle: u64,
    },
    /// Remaining iterations handed to the NEON engine.
    LoopVectorized {
        /// The loop.
        loop_id: u32,
        /// Loop-class name.
        class: &'static str,
        /// Iterations planned for vector execution.
        planned: u32,
        /// Alignment-peel iterations kept scalar.
        peeled: u32,
        /// Core cycle.
        cycle: u64,
    },
    /// Analysis ended without vectorizing.
    LoopRejected {
        /// The loop.
        loop_id: u32,
        /// Class recorded for the census.
        class: &'static str,
        /// Stable rejection reason.
        reason: &'static str,
        /// Core cycle.
        cycle: u64,
    },
    /// A detected inconsistency rolled an (analysis or coverage) back
    /// to scalar execution.
    LoopRolledBack {
        /// The loop (0 when the recovery had no loop context).
        loop_id: u32,
        /// Class recorded for the census.
        class: &'static str,
        /// Stable rollback reason.
        reason: &'static str,
        /// Core cycle.
        cycle: u64,
    },
    /// Coverage for one vectorized loop instance ended.
    LoopFinished {
        /// The loop.
        loop_id: u32,
        /// Loop iterations that ran under coverage.
        iters: u32,
        /// Core cycle.
        cycle: u64,
    },
    /// Terminal degradation: the DSA detached itself.
    EnginePoisoned {
        /// Operation that hit the impossible transition.
        during: &'static str,
        /// Mode the operation required.
        expected: &'static str,
        /// Core cycle.
        cycle: u64,
    },
    /// An armed fault plan corrupted DSA bookkeeping here.
    FaultInjected {
        /// Stable fault-site name.
        site: &'static str,
        /// Core cycle.
        cycle: u64,
    },
    /// A partial-vectorization chunk (or continued sentinel block) was
    /// re-verified and injected.
    PartialChunk {
        /// The loop.
        loop_id: u32,
        /// Iterations in the chunk.
        chunk_iters: u32,
        /// DSA-side cycles charged for the re-verification.
        dsa_cycles: u64,
        /// Core cycle.
        cycle: u64,
    },
    /// A speculative region resolved at loop exit.
    SpeculationResolved {
        /// The loop.
        loop_id: u32,
        /// Sentinel or conditional.
        kind: SpecKind,
        /// Elements speculatively injected.
        injected: u64,
        /// Elements that turned out useful.
        used: u64,
        /// Lanes discarded.
        discarded: u64,
        /// Core cycle.
        cycle: u64,
    },
    /// Supervised harness: a run attempt failed and will be retried.
    /// Harness-side events carry `cycle: 0` — they live in the
    /// wall-clock domain, not the simulated-cycle domain.
    SupervisorRetry {
        /// Workload name (stable vocabulary from the bench crate).
        workload: &'static str,
        /// 1-based attempt number that failed.
        attempt: u32,
        /// Backoff applied before the next attempt, in milliseconds.
        backoff_ms: u64,
        /// Core cycle (always 0; wall-clock domain).
        cycle: u64,
    },
    /// Supervised harness: a worker panicked and was isolated.
    WorkerPanicked {
        /// Workload name.
        workload: &'static str,
        /// Core cycle (always 0; wall-clock domain).
        cycle: u64,
    },
    /// Supervised harness: a run exceeded its wall-clock deadline.
    DeadlineExceeded {
        /// Workload name.
        workload: &'static str,
        /// The deadline, in milliseconds.
        deadline_ms: u64,
        /// Core cycle (always 0; wall-clock domain).
        cycle: u64,
    },
    /// Supervised harness: a workload's circuit breaker opened after
    /// repeated failures/degradations; further runs short-circuit.
    BreakerOpen {
        /// Workload name.
        workload: &'static str,
        /// Failures counted when the breaker opened.
        failures: u32,
        /// Core cycle (always 0; wall-clock domain).
        cycle: u64,
    },
    /// Supervised harness: an open breaker's cooldown elapsed and one
    /// probe call was admitted (half-open state).
    BreakerHalfOpen {
        /// Workload name.
        workload: &'static str,
        /// Cooldown that elapsed before the probe, in milliseconds.
        cooldown_ms: u64,
        /// Core cycle (always 0; wall-clock domain).
        cycle: u64,
    },
    /// Supervised harness: a half-open probe succeeded and the breaker
    /// closed again.
    BreakerClosed {
        /// Workload name.
        workload: &'static str,
        /// Core cycle (always 0; wall-clock domain).
        cycle: u64,
    },
    /// Service: a job passed admission control onto a shard queue.
    JobAdmitted {
        /// Service-assigned job id.
        job: u64,
        /// Shard the job was routed to.
        shard: u32,
        /// Queue depth after enqueueing.
        queue_depth: u32,
        /// Core cycle (always 0; wall-clock domain).
        cycle: u64,
    },
    /// Service: admission control shed a job (typed rejection, never a
    /// panic or a hang).
    JobShed {
        /// Stable shed reason (`overloaded`, `deadline`).
        reason: &'static str,
        /// Core cycle (always 0; wall-clock domain).
        cycle: u64,
    },
    /// Service: an admitted job completed with a verified checksum.
    JobCompleted {
        /// Service-assigned job id.
        job: u64,
        /// Shard that produced the final result.
        shard: u32,
        /// Served from the content-addressed result store.
        cache_hit: bool,
        /// Times the session resumed on a different shard.
        migrations: u32,
        /// Wall-clock latency from admission, in milliseconds.
        latency_ms: u64,
        /// Core cycle (always 0; wall-clock domain).
        cycle: u64,
    },
    /// Service: a session checkpointed its snapshot at a slice boundary.
    SessionCheckpointed {
        /// Service-assigned job id.
        job: u64,
        /// Shard that captured the checkpoint.
        shard: u32,
        /// Serialized session image size in bytes.
        bytes: u64,
        /// Committed instructions at the checkpoint.
        commits: u64,
        /// Core cycle (always 0; wall-clock domain).
        cycle: u64,
    },
    /// Service: an in-flight session moved off a dead shard and will
    /// resume from its last checkpoint on a healthy one.
    SessionMigrated {
        /// Service-assigned job id.
        job: u64,
        /// Shard the session left.
        from_shard: u32,
        /// Core cycle (always 0; wall-clock domain).
        cycle: u64,
    },
    /// Service: the chaos controller (or an operator) killed a shard.
    ShardKilled {
        /// The shard.
        shard: u32,
        /// Sessions (queued + in-flight) drained for migration.
        drained: u32,
        /// Core cycle (always 0; wall-clock domain).
        cycle: u64,
    },
    /// Service: a killed shard revived and rejoined the pool.
    ShardRecovered {
        /// The shard.
        shard: u32,
        /// Core cycle (always 0; wall-clock domain).
        cycle: u64,
    },
    /// A snapshot image validated and warm state was restored.
    SnapshotRestored {
        /// Serialized image size in bytes.
        bytes: u64,
        /// DSA-cache entries that came back warm.
        cache_entries: u64,
        /// Core cycle (always 0; restore happens between runs).
        cycle: u64,
    },
    /// A snapshot image was rejected; the engine cold-started instead.
    SnapshotRejected {
        /// Stable rejection-kind name (`SnapshotError::kind_name`).
        kind: &'static str,
        /// Core cycle (always 0; restore happens between runs).
        cycle: u64,
    },
}

impl Event {
    /// Stable kebab-case type name (the JSONL `type` field).
    pub fn type_name(&self) -> &'static str {
        match self {
            Event::RunStarted { .. } => "run-started",
            Event::RunFinished { .. } => "run-finished",
            Event::SimFault { .. } => "sim-fault",
            Event::LoopDetected { .. } => "loop-detected",
            Event::StageActivated { .. } => "stage-activated",
            Event::CacheAccess { .. } => "cache-access",
            Event::DependencyVerdict { .. } => "dependency-verdict",
            Event::LoopClassified { .. } => "loop-classified",
            Event::LoopVectorized { .. } => "loop-vectorized",
            Event::LoopRejected { .. } => "loop-rejected",
            Event::LoopRolledBack { .. } => "loop-rolled-back",
            Event::LoopFinished { .. } => "loop-finished",
            Event::EnginePoisoned { .. } => "engine-poisoned",
            Event::FaultInjected { .. } => "fault-injected",
            Event::PartialChunk { .. } => "partial-chunk",
            Event::SpeculationResolved { .. } => "speculation-resolved",
            Event::SupervisorRetry { .. } => "supervisor-retry",
            Event::WorkerPanicked { .. } => "worker-panicked",
            Event::DeadlineExceeded { .. } => "deadline-exceeded",
            Event::BreakerOpen { .. } => "breaker-open",
            Event::BreakerHalfOpen { .. } => "breaker-half-open",
            Event::BreakerClosed { .. } => "breaker-closed",
            Event::JobAdmitted { .. } => "job-admitted",
            Event::JobShed { .. } => "job-shed",
            Event::JobCompleted { .. } => "job-completed",
            Event::SessionCheckpointed { .. } => "session-checkpointed",
            Event::SessionMigrated { .. } => "session-migrated",
            Event::ShardKilled { .. } => "shard-killed",
            Event::ShardRecovered { .. } => "shard-recovered",
            Event::SnapshotRestored { .. } => "snapshot-restored",
            Event::SnapshotRejected { .. } => "snapshot-rejected",
        }
    }

    /// Core cycle at emission.
    pub fn cycle(&self) -> u64 {
        match *self {
            Event::RunStarted { cycle, .. }
            | Event::RunFinished { cycle, .. }
            | Event::SimFault { cycle, .. }
            | Event::LoopDetected { cycle, .. }
            | Event::StageActivated { cycle, .. }
            | Event::CacheAccess { cycle, .. }
            | Event::DependencyVerdict { cycle, .. }
            | Event::LoopClassified { cycle, .. }
            | Event::LoopVectorized { cycle, .. }
            | Event::LoopRejected { cycle, .. }
            | Event::LoopRolledBack { cycle, .. }
            | Event::LoopFinished { cycle, .. }
            | Event::EnginePoisoned { cycle, .. }
            | Event::FaultInjected { cycle, .. }
            | Event::PartialChunk { cycle, .. }
            | Event::SpeculationResolved { cycle, .. }
            | Event::SupervisorRetry { cycle, .. }
            | Event::WorkerPanicked { cycle, .. }
            | Event::DeadlineExceeded { cycle, .. }
            | Event::BreakerOpen { cycle, .. }
            | Event::BreakerHalfOpen { cycle, .. }
            | Event::BreakerClosed { cycle, .. }
            | Event::JobAdmitted { cycle, .. }
            | Event::JobShed { cycle, .. }
            | Event::JobCompleted { cycle, .. }
            | Event::SessionCheckpointed { cycle, .. }
            | Event::SessionMigrated { cycle, .. }
            | Event::ShardKilled { cycle, .. }
            | Event::ShardRecovered { cycle, .. }
            | Event::SnapshotRestored { cycle, .. }
            | Event::SnapshotRejected { cycle, .. } => cycle,
        }
    }

    /// DSA-side cycles charged by this event (the accounting invariant:
    /// a run's `DsaStats::detection_cycles` equals the sum of this over
    /// its event stream).
    pub fn dsa_cycles(&self) -> u64 {
        match *self {
            Event::StageActivated { dsa_cycles, .. }
            | Event::CacheAccess { dsa_cycles, .. }
            | Event::DependencyVerdict { dsa_cycles, .. }
            | Event::PartialChunk { dsa_cycles, .. } => dsa_cycles,
            _ => 0,
        }
    }

    /// The loop this event concerns, if any.
    pub fn loop_id(&self) -> Option<u32> {
        match *self {
            Event::LoopDetected { loop_id, .. }
            | Event::StageActivated { loop_id, .. }
            | Event::CacheAccess { loop_id, .. }
            | Event::DependencyVerdict { loop_id, .. }
            | Event::LoopClassified { loop_id, .. }
            | Event::LoopVectorized { loop_id, .. }
            | Event::LoopRejected { loop_id, .. }
            | Event::LoopRolledBack { loop_id, .. }
            | Event::LoopFinished { loop_id, .. }
            | Event::PartialChunk { loop_id, .. }
            | Event::SpeculationResolved { loop_id, .. } => Some(loop_id),
            _ => None,
        }
    }

    /// One JSONL record for this event: a single-line JSON object with
    /// fixed field order (`record`, `type`, `cycle`, then the variant's
    /// fields). Hand-rolled — the vocabulary contains no characters that
    /// need escaping, but strings are escaped anyway for safety.
    pub fn to_json_line(&self) -> String {
        let mut s = String::with_capacity(128);
        let _ = write!(s, "{{\"record\":\"event\",\"type\":\"{}\",\"cycle\":{}", self.type_name(), self.cycle());
        match *self {
            Event::RunStarted { pc, .. } => {
                let _ = write!(s, ",\"pc\":{pc}");
            }
            Event::RunFinished { committed, halted, .. } => {
                let _ = write!(s, ",\"committed\":{committed},\"halted\":{halted}");
            }
            Event::SimFault { kind, pc, .. } => {
                let _ = write!(s, ",\"kind\":{},\"pc\":{pc}", json_str(kind));
            }
            Event::LoopDetected { loop_id, end_pc, .. } => {
                let _ = write!(s, ",\"loop\":{loop_id},\"end_pc\":{end_pc}");
            }
            Event::StageActivated { stage, loop_id, dsa_cycles, .. } => {
                let _ = write!(
                    s,
                    ",\"stage\":{},\"loop\":{loop_id},\"dsa_cycles\":{dsa_cycles}",
                    json_str(stage.name())
                );
            }
            Event::CacheAccess { cache, outcome, loop_id, count, dsa_cycles, .. } => {
                let _ = write!(
                    s,
                    ",\"cache\":{},\"outcome\":{},\"loop\":{loop_id},\"count\":{count},\"dsa_cycles\":{dsa_cycles}",
                    json_str(cache.name()),
                    json_str(outcome.name())
                );
            }
            Event::DependencyVerdict { loop_id, pairs, distance, dsa_cycles, .. } => {
                let _ = write!(s, ",\"loop\":{loop_id},\"pairs\":{pairs},\"distance\":");
                match distance {
                    Some(d) => {
                        let _ = write!(s, "{d}");
                    }
                    None => s.push_str("null"),
                }
                let _ = write!(s, ",\"dsa_cycles\":{dsa_cycles}");
            }
            Event::LoopClassified { loop_id, class, .. } => {
                let _ = write!(s, ",\"loop\":{loop_id},\"class\":{}", json_str(class));
            }
            Event::LoopVectorized { loop_id, class, planned, peeled, .. } => {
                let _ = write!(
                    s,
                    ",\"loop\":{loop_id},\"class\":{},\"planned\":{planned},\"peeled\":{peeled}",
                    json_str(class)
                );
            }
            Event::LoopRejected { loop_id, class, reason, .. } => {
                let _ = write!(
                    s,
                    ",\"loop\":{loop_id},\"class\":{},\"reason\":{}",
                    json_str(class),
                    json_str(reason)
                );
            }
            Event::LoopRolledBack { loop_id, class, reason, .. } => {
                let _ = write!(
                    s,
                    ",\"loop\":{loop_id},\"class\":{},\"reason\":{}",
                    json_str(class),
                    json_str(reason)
                );
            }
            Event::LoopFinished { loop_id, iters, .. } => {
                let _ = write!(s, ",\"loop\":{loop_id},\"iters\":{iters}");
            }
            Event::EnginePoisoned { during, expected, .. } => {
                let _ = write!(
                    s,
                    ",\"during\":{},\"expected\":{}",
                    json_str(during),
                    json_str(expected)
                );
            }
            Event::FaultInjected { site, .. } => {
                let _ = write!(s, ",\"site\":{}", json_str(site));
            }
            Event::PartialChunk { loop_id, chunk_iters, dsa_cycles, .. } => {
                let _ = write!(
                    s,
                    ",\"loop\":{loop_id},\"chunk_iters\":{chunk_iters},\"dsa_cycles\":{dsa_cycles}"
                );
            }
            Event::SpeculationResolved { loop_id, kind, injected, used, discarded, .. } => {
                let _ = write!(
                    s,
                    ",\"loop\":{loop_id},\"kind\":{},\"injected\":{injected},\"used\":{used},\"discarded\":{discarded}",
                    json_str(kind.name())
                );
            }
            Event::SupervisorRetry { workload, attempt, backoff_ms, .. } => {
                let _ = write!(
                    s,
                    ",\"workload\":{},\"attempt\":{attempt},\"backoff_ms\":{backoff_ms}",
                    json_str(workload)
                );
            }
            Event::WorkerPanicked { workload, .. } => {
                let _ = write!(s, ",\"workload\":{}", json_str(workload));
            }
            Event::DeadlineExceeded { workload, deadline_ms, .. } => {
                let _ = write!(
                    s,
                    ",\"workload\":{},\"deadline_ms\":{deadline_ms}",
                    json_str(workload)
                );
            }
            Event::BreakerOpen { workload, failures, .. } => {
                let _ = write!(
                    s,
                    ",\"workload\":{},\"failures\":{failures}",
                    json_str(workload)
                );
            }
            Event::BreakerHalfOpen { workload, cooldown_ms, .. } => {
                let _ = write!(
                    s,
                    ",\"workload\":{},\"cooldown_ms\":{cooldown_ms}",
                    json_str(workload)
                );
            }
            Event::BreakerClosed { workload, .. } => {
                let _ = write!(s, ",\"workload\":{}", json_str(workload));
            }
            Event::JobAdmitted { job, shard, queue_depth, .. } => {
                let _ = write!(s, ",\"job\":{job},\"shard\":{shard},\"queue_depth\":{queue_depth}");
            }
            Event::JobShed { reason, .. } => {
                let _ = write!(s, ",\"reason\":{}", json_str(reason));
            }
            Event::JobCompleted { job, shard, cache_hit, migrations, latency_ms, .. } => {
                let _ = write!(
                    s,
                    ",\"job\":{job},\"shard\":{shard},\"cache_hit\":{cache_hit},\"migrations\":{migrations},\"latency_ms\":{latency_ms}"
                );
            }
            Event::SessionCheckpointed { job, shard, bytes, commits, .. } => {
                let _ = write!(
                    s,
                    ",\"job\":{job},\"shard\":{shard},\"bytes\":{bytes},\"commits\":{commits}"
                );
            }
            Event::SessionMigrated { job, from_shard, .. } => {
                let _ = write!(s, ",\"job\":{job},\"from_shard\":{from_shard}");
            }
            Event::ShardKilled { shard, drained, .. } => {
                let _ = write!(s, ",\"shard\":{shard},\"drained\":{drained}");
            }
            Event::ShardRecovered { shard, .. } => {
                let _ = write!(s, ",\"shard\":{shard}");
            }
            Event::SnapshotRestored { bytes, cache_entries, .. } => {
                let _ = write!(s, ",\"bytes\":{bytes},\"cache_entries\":{cache_entries}");
            }
            Event::SnapshotRejected { kind, .. } => {
                let _ = write!(s, ",\"kind\":{}", json_str(kind));
            }
        }
        s.push('}');
        s
    }
}

/// Escapes a string as a JSON string literal (quotes included).
pub fn json_str(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len() + 2);
    out.push('"');
    for c in raw.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable_and_distinct() {
        let names: Vec<&str> = Stage::ALL.iter().map(|s| s.name()).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
        assert_eq!(Stage::LoopDetection.name(), "loop-detection");
        assert_eq!(CacheKind::Dsa.name(), "dsa-cache");
        assert_eq!(SpecKind::Sentinel.name(), "sentinel");
    }

    #[test]
    fn json_lines_are_single_line_objects() {
        let ev = Event::LoopVectorized { loop_id: 7, class: "count", planned: 96, peeled: 2, cycle: 1234 };
        let line = ev.to_json_line();
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(!line.contains('\n'));
        assert!(line.contains("\"type\":\"loop-vectorized\""));
        assert!(line.contains("\"planned\":96"));
    }

    #[test]
    fn accessors_agree_with_payload() {
        let ev = Event::CacheAccess {
            cache: CacheKind::Verification,
            outcome: CacheOutcome::Insert,
            loop_id: 9,
            count: 4,
            dsa_cycles: 4,
            cycle: 55,
        };
        assert_eq!(ev.cycle(), 55);
        assert_eq!(ev.dsa_cycles(), 4);
        assert_eq!(ev.loop_id(), Some(9));
        assert_eq!(Event::RunStarted { pc: 0, cycle: 0 }.loop_id(), None);
    }

    #[test]
    fn string_escaping() {
        assert_eq!(json_str("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json_str("plain"), "\"plain\"");
    }
}
