//! Cross-run trace rollups: the aggregation core behind the
//! `trace_query` binary.
//!
//! A [`Rollup`] folds any number of trace files — JSONL or
//! `dsa-tracebin/v1`, auto-sniffed by [`read_trace`] — into the fleet
//! views the Saturn-style analyses need: cycles by stage, cache-verdict
//! and CIDP-outcome distributions, and per-workload degradation/poison
//! rates. The cycle-charge keying is **identical** to `trace_report`'s
//! per-run table (stage name / cache name / `"cidp"` /
//! `"partial-chunk"`), so a rollup over N runs sums to exactly the N
//! per-run tables — the ledger invariant (Σ event `dsa_cycles` ==
//! `DsaStats::detection_cycles`) survives aggregation.
//!
//! Engine events are attributed to the trace's label (its file stem —
//! traces are written per workload); harness/service events carry
//! their own `workload` field and are attributed to that instead.

use std::collections::BTreeMap;

use crate::columnar;
use crate::event::Event;
use crate::jsonl;
use crate::metrics::Histogram;

/// Events + DSA-side cycles charged against one source (one row of the
/// cycles-by-stage table).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Charge {
    /// Charging events folded.
    pub events: u64,
    /// DSA cycles charged.
    pub dsa_cycles: u64,
}

/// The source a cycle-charging event bills to — the same keying
/// `trace_report` uses, so per-run and cross-run tables reconcile.
pub fn charge_source(ev: &Event) -> Option<&'static str> {
    match ev {
        Event::StageActivated { stage, .. } => Some(stage.name()),
        Event::CacheAccess { cache, .. } => Some(cache.name()),
        Event::DependencyVerdict { .. } => Some("cidp"),
        Event::PartialChunk { .. } => Some("partial-chunk"),
        _ => None,
    }
}

/// CIDP verdict distribution across the folded traces.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CidpTally {
    /// Verdicts produced.
    pub verdicts: u64,
    /// Verdicts predicting a dependency (`distance` present).
    pub dependent: u64,
    /// Verdicts predicting independence.
    pub independent: u64,
    /// Write×read stream pairs evaluated.
    pub pairs: u64,
    /// Distribution of predicted distances (dependent verdicts only).
    pub distances: Histogram,
}

/// Loop-lifecycle and failure tallies for one workload label.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkloadTally {
    /// Loops detected.
    pub detected: u64,
    /// Loops vectorized.
    pub vectorized: u64,
    /// Loops rejected by analysis.
    pub rejected: u64,
    /// Rollbacks to scalar execution.
    pub rolled_back: u64,
    /// Vectorized-loop instances that completed coverage.
    pub finished: u64,
    /// Engine poisonings (terminal degradation).
    pub poisoned: u64,
    /// Faults injected (armed fault plans).
    pub faults: u64,
    /// Simulator faults.
    pub sim_faults: u64,
}

impl WorkloadTally {
    /// Rejections + rollbacks per detected loop (0 when none detected).
    pub fn degradation_rate(&self) -> f64 {
        if self.detected == 0 {
            return 0.0;
        }
        (self.rejected + self.rolled_back) as f64 / self.detected as f64
    }
}

/// A streaming cross-run aggregation; fold files in any order, merge
/// partial rollups from shards, read the totals out.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Rollup {
    /// Trace files folded.
    pub runs: u64,
    /// Events folded.
    pub events: u64,
    /// Σ event `dsa_cycles` — must equal the sum of every folded run's
    /// `DsaStats::detection_cycles` (the ledger invariant).
    pub total_dsa_cycles: u64,
    /// Events per type name.
    pub types: BTreeMap<&'static str, u64>,
    /// Cycles-by-source table (stage/cache/cidp/partial-chunk keys).
    pub charges: BTreeMap<&'static str, Charge>,
    /// Cache traffic: `(cache, outcome)` → accesses.
    pub cache: BTreeMap<(&'static str, &'static str), u64>,
    /// CIDP verdict distribution.
    pub cidp: CidpTally,
    /// Per-workload lifecycle/failure tallies.
    pub workloads: BTreeMap<String, WorkloadTally>,
}

impl Rollup {
    /// An empty rollup.
    pub fn new() -> Rollup {
        Rollup::default()
    }

    /// Folds one trace's events under `label` (conventionally the file
    /// stem) and counts one run.
    pub fn fold_file(&mut self, label: &str, events: &[Event]) {
        self.runs += 1;
        for ev in events {
            self.fold(label, ev);
        }
    }

    fn tally(&mut self, label: &str) -> &mut WorkloadTally {
        self.workloads.entry(label.to_string()).or_default()
    }

    /// Folds one event under `label`.
    pub fn fold(&mut self, label: &str, ev: &Event) {
        self.events += 1;
        self.total_dsa_cycles = self.total_dsa_cycles.saturating_add(ev.dsa_cycles());
        *self.types.entry(ev.type_name()).or_default() += 1;
        if let Some(source) = charge_source(ev) {
            let c = self.charges.entry(source).or_default();
            c.events += 1;
            c.dsa_cycles = c.dsa_cycles.saturating_add(ev.dsa_cycles());
        }
        match *ev {
            Event::CacheAccess { cache, outcome, count, .. } => {
                *self.cache.entry((cache.name(), outcome.name())).or_default() += u64::from(count);
            }
            Event::DependencyVerdict { pairs, distance, .. } => {
                self.cidp.verdicts += 1;
                self.cidp.pairs += u64::from(pairs);
                match distance {
                    Some(d) => {
                        self.cidp.dependent += 1;
                        self.cidp.distances.record(u64::from(d));
                    }
                    None => self.cidp.independent += 1,
                }
            }
            Event::LoopDetected { .. } => self.tally(label).detected += 1,
            Event::LoopVectorized { .. } => self.tally(label).vectorized += 1,
            Event::LoopRejected { .. } => self.tally(label).rejected += 1,
            Event::LoopRolledBack { .. } => self.tally(label).rolled_back += 1,
            Event::LoopFinished { .. } => self.tally(label).finished += 1,
            Event::EnginePoisoned { .. } => self.tally(label).poisoned += 1,
            Event::FaultInjected { .. } => self.tally(label).faults += 1,
            Event::SimFault { .. } => self.tally(label).sim_faults += 1,
            // Harness/service events attribute to their own workload.
            Event::SupervisorRetry { workload, .. }
            | Event::WorkerPanicked { workload, .. }
            | Event::DeadlineExceeded { workload, .. }
            | Event::BreakerOpen { workload, .. }
            | Event::BreakerHalfOpen { workload, .. }
            | Event::BreakerClosed { workload, .. } => {
                self.tally(workload);
            }
            _ => {}
        }
    }

    /// Folds another rollup in (shard-partial aggregation). Exact: a
    /// merge of per-run rollups equals one rollup over all runs.
    pub fn merge(&mut self, other: &Rollup) {
        self.runs += other.runs;
        self.events += other.events;
        self.total_dsa_cycles = self.total_dsa_cycles.saturating_add(other.total_dsa_cycles);
        for (&k, &v) in &other.types {
            *self.types.entry(k).or_default() += v;
        }
        for (&k, c) in &other.charges {
            let mine = self.charges.entry(k).or_default();
            mine.events += c.events;
            mine.dsa_cycles = mine.dsa_cycles.saturating_add(c.dsa_cycles);
        }
        for (&k, &v) in &other.cache {
            *self.cache.entry(k).or_default() += v;
        }
        self.cidp.verdicts += other.cidp.verdicts;
        self.cidp.dependent += other.cidp.dependent;
        self.cidp.independent += other.cidp.independent;
        self.cidp.pairs += other.cidp.pairs;
        self.cidp.distances.merge(&other.cidp.distances);
        for (k, t) in &other.workloads {
            let mine = self.workloads.entry(k.clone()).or_default();
            mine.detected += t.detected;
            mine.vectorized += t.vectorized;
            mine.rejected += t.rejected;
            mine.rolled_back += t.rolled_back;
            mine.finished += t.finished;
            mine.poisoned += t.poisoned;
            mine.faults += t.faults;
            mine.sim_faults += t.sim_faults;
        }
    }
}

/// Which on-disk format a trace file used.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceFormat {
    /// `dsa-trace/v1` JSONL.
    Jsonl,
    /// `dsa-tracebin/v1` columnar binary.
    Binary,
}

/// A trace loaded from disk: its events, the format it was stored in,
/// and any forward-compat warnings the JSONL reader raised.
#[derive(Debug, Clone)]
pub struct LoadedTrace {
    /// The decoded event stream, in emission order.
    pub events: Vec<Event>,
    /// Detected on-disk format.
    pub format: TraceFormat,
    /// JSONL forward-compat warnings (always empty for binary).
    pub warnings: Vec<String>,
}

/// Decodes a trace from raw file bytes, sniffing the format by magic:
/// [`columnar::looks_binary`] selects the binary reader, anything else
/// is parsed as JSONL.
///
/// # Errors
///
/// Returns a human-readable description of the first problem.
pub fn read_trace(bytes: &[u8]) -> Result<LoadedTrace, String> {
    if columnar::looks_binary(bytes) {
        let events = columnar::decode(bytes).map_err(|e| e.to_string())?;
        return Ok(LoadedTrace { events, format: TraceFormat::Binary, warnings: Vec::new() });
    }
    let text = std::str::from_utf8(bytes).map_err(|_| "not UTF-8 (and not a binary trace)".to_string())?;
    let (events, warnings) =
        jsonl::parse_document(text).map_err(|(line, why)| format!("line {line}: {why}"))?;
    Ok(LoadedTrace { events, format: TraceFormat::Jsonl, warnings })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{CacheKind, CacheOutcome, Stage};
    use crate::{JsonlSink, TraceSink};

    fn run_events(base: u32) -> Vec<Event> {
        vec![
            Event::RunStarted { pc: 0, cycle: 0 },
            Event::LoopDetected { loop_id: base, end_pc: base + 32, cycle: 10 },
            Event::StageActivated { stage: Stage::LoopDetection, loop_id: base, dsa_cycles: 1, cycle: 10 },
            Event::CacheAccess {
                cache: CacheKind::Dsa,
                outcome: CacheOutcome::Miss,
                loop_id: base,
                count: 1,
                dsa_cycles: 2,
                cycle: 10,
            },
            Event::DependencyVerdict { loop_id: base, pairs: 2, distance: None, dsa_cycles: 6, cycle: 30 },
            Event::LoopVectorized { loop_id: base, class: "count", planned: 60, peeled: 0, cycle: 31 },
            Event::PartialChunk { loop_id: base, chunk_iters: 8, dsa_cycles: 3, cycle: 50 },
            Event::LoopFinished { loop_id: base, iters: 60, cycle: 99 },
            Event::RunFinished { cycle: 100, committed: 400, halted: true },
        ]
    }

    #[test]
    fn charges_key_like_trace_report() {
        let mut r = Rollup::new();
        r.fold_file("w1", &run_events(64));
        assert_eq!(r.charges["loop-detection"], Charge { events: 1, dsa_cycles: 1 });
        assert_eq!(r.charges["dsa-cache"], Charge { events: 1, dsa_cycles: 2 });
        assert_eq!(r.charges["cidp"], Charge { events: 1, dsa_cycles: 6 });
        assert_eq!(r.charges["partial-chunk"], Charge { events: 1, dsa_cycles: 3 });
        assert_eq!(r.total_dsa_cycles, 12);
        let by_source: u64 = r.charges.values().map(|c| c.dsa_cycles).sum();
        assert_eq!(by_source, r.total_dsa_cycles, "every charged cycle has a source");
    }

    #[test]
    fn merge_of_per_run_rollups_equals_one_rollup() {
        let runs: Vec<Vec<Event>> = (0..4).map(|i| run_events(64 + i * 4)).collect();
        let mut whole = Rollup::new();
        for (i, events) in runs.iter().enumerate() {
            whole.fold_file(&format!("w{i}"), events);
        }
        let mut merged = Rollup::new();
        for (i, events) in runs.iter().enumerate() {
            let mut one = Rollup::new();
            one.fold_file(&format!("w{i}"), events);
            merged.merge(&one);
        }
        assert_eq!(merged, whole);
        assert_eq!(merged.runs, 4);
    }

    #[test]
    fn cidp_and_cache_distributions() {
        let mut r = Rollup::new();
        r.fold("x", &Event::DependencyVerdict { loop_id: 1, pairs: 3, distance: Some(4), dsa_cycles: 5, cycle: 1 });
        r.fold("x", &Event::DependencyVerdict { loop_id: 2, pairs: 1, distance: None, dsa_cycles: 5, cycle: 2 });
        assert_eq!(r.cidp.verdicts, 2);
        assert_eq!(r.cidp.dependent, 1);
        assert_eq!(r.cidp.independent, 1);
        assert_eq!(r.cidp.pairs, 4);
        assert_eq!(r.cidp.distances.count(), 1);
        r.fold(
            "x",
            &Event::CacheAccess {
                cache: CacheKind::Verification,
                outcome: CacheOutcome::Insert,
                loop_id: 1,
                count: 7,
                dsa_cycles: 7,
                cycle: 3,
            },
        );
        assert_eq!(r.cache[&("verification-cache", "insert")], 7);
    }

    #[test]
    fn workload_attribution_and_degradation_rate() {
        let mut r = Rollup::new();
        r.fold("app", &Event::LoopDetected { loop_id: 4, end_pc: 20, cycle: 1 });
        r.fold("app", &Event::LoopDetected { loop_id: 8, end_pc: 40, cycle: 2 });
        r.fold("app", &Event::LoopRejected { loop_id: 8, class: "unknown", reason: "irregular", cycle: 3 });
        r.fold("app", &Event::SupervisorRetry { workload: "other", attempt: 1, backoff_ms: 2, cycle: 0 });
        let app = r.workloads["app"];
        assert_eq!(app.detected, 2);
        assert_eq!(app.rejected, 1);
        assert!((app.degradation_rate() - 0.5).abs() < 1e-12);
        assert!(r.workloads.contains_key("other"), "harness events attribute to their workload");
    }

    #[test]
    fn read_trace_sniffs_both_formats_identically() {
        let events = run_events(64);
        // JSONL twin.
        let mut sink = JsonlSink::new(Vec::new());
        for ev in &events {
            sink.record(ev);
        }
        sink.finish();
        let jsonl_bytes = sink.into_inner();
        // Binary twin.
        let bin_bytes = columnar::encode(&events);
        let a = read_trace(&jsonl_bytes).expect("jsonl");
        let b = read_trace(&bin_bytes).expect("binary");
        assert_eq!(a.format, TraceFormat::Jsonl);
        assert_eq!(b.format, TraceFormat::Binary);
        assert_eq!(a.events, events);
        assert_eq!(b.events, events);
        // And they roll up identically.
        let mut ra = Rollup::new();
        ra.fold_file("t", &a.events);
        let mut rb = Rollup::new();
        rb.fold_file("t", &b.events);
        assert_eq!(ra, rb);
    }

    #[test]
    fn read_trace_rejects_garbage() {
        assert!(read_trace(b"\xff\xfe\x00garbage").is_err());
        assert!(read_trace(b"not a trace at all").is_err());
        // Valid magic, truncated body.
        let bin = columnar::encode(&run_events(4));
        assert!(read_trace(&bin[..bin.len() - 2]).is_err());
    }
}
