//! A minimal JSON reader for the trace tooling (`trace_report`, the
//! schema validator, the golden test). Covers the full JSON grammar the
//! exporters emit — objects, arrays, strings with escapes, integers,
//! floats, booleans, null — nothing more exotic.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value. Numbers keep their `f64` reading plus an exact
/// `u64` when the literal was a non-negative integer (cycle counts
/// exceed 2^53 in principle).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number; `.1` is the exact unsigned reading when available.
    Num(f64, Option<u64>),
    /// A string (escapes resolved).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, key-ordered.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The exact unsigned integer payload, if any.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(_, u) => *u,
            _ => None,
        }
    }

    /// The boolean payload, if any.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The object payload, if any.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// Object field lookup (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_obj().and_then(|m| m.get(key))
    }
}

/// Where and why parsing failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub at: usize,
    /// Human-readable cause.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parses one complete JSON value; trailing non-whitespace is an error.
///
/// # Errors
///
/// Returns a [`ParseError`] locating the first malformed byte.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError { at: self.pos, msg: msg.to_string() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Value::Str),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            // Surrogate pairs don't occur in our own
                            // output; map them to the replacement char.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy the full UTF-8 scalar, not just one byte.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let c = s.chars().next().expect("non-empty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let int_end = self.pos;
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        let f: f64 = text.parse().map_err(|_| self.err("bad number"))?;
        let exact = if int_end == self.pos && !text.starts_with('-') {
            text.parse::<u64>().ok()
        } else {
            None
        };
        Ok(Value::Num(f, exact))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_an_event_line() {
        let line = crate::Event::LoopVectorized {
            loop_id: 3,
            class: "count",
            planned: 12,
            peeled: 0,
            cycle: 99,
        }
        .to_json_line();
        let v = parse(&line).expect("parses");
        assert_eq!(v.get("type").and_then(Value::as_str), Some("loop-vectorized"));
        assert_eq!(v.get("cycle").and_then(Value::as_u64), Some(99));
        assert_eq!(v.get("planned").and_then(Value::as_u64), Some(12));
    }

    #[test]
    fn parses_nested_structures_and_escapes() {
        let v = parse(r#"{"a":[1,2.5,null,true],"b":{"c":"x\nyA"},"d":-3}"#).expect("parses");
        assert_eq!(v.get("b").and_then(|b| b.get("c")).and_then(Value::as_str), Some("x\nyA"));
        assert_eq!(v.get("d"), Some(&Value::Num(-3.0, None)));
        let Some(Value::Arr(items)) = v.get("a") else { panic!("array") };
        assert_eq!(items.len(), 4);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn exact_integers_survive() {
        let v = parse("18446744073709551615").expect("parses");
        assert_eq!(v.as_u64(), Some(u64::MAX));
    }
}
