//! The Chrome trace-event exporter: renders each loop's lifecycle as
//! track slices against core cycles, loadable in Perfetto
//! (<https://ui.perfetto.dev>) or `chrome://tracing`.
//!
//! Mapping:
//!
//! - `pid` 0 is the whole simulation; each loop gets its own `tid`
//!   (named `loop 0x<id>`), so loops stack as parallel tracks.
//! - A **detect** slice spans `LoopDetected` → the analysis verdict
//!   (`LoopVectorized` / `LoopRejected`); an **execute** slice spans
//!   `LoopVectorized` → `LoopFinished` / `LoopRolledBack`. A detection
//!   stall is literally a long `detect` slice.
//! - Stage activations, cache accesses, faults, rollbacks and poisoning
//!   appear as instant markers on the owning track (tid 0 for events
//!   with no loop context).
//! - `ts`/`dur` are core **cycles** (the viewer labels them µs; read
//!   the axis as cycles).

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

use crate::event::{json_str, Event};
use crate::TraceSink;

/// An open lifecycle slice: start cycle + display name.
#[derive(Debug, Clone)]
struct OpenSpan {
    start: u64,
    name: String,
}

/// Accumulates trace events in memory and writes one Chrome trace JSON
/// document on [`TraceSink::finish`] (idempotent — later finishes are
/// no-ops, so dropping a fanout can't double-write).
pub struct PerfettoSink<W: Write> {
    out: Option<W>,
    /// Rendered `traceEvents` entries (each a complete JSON object).
    entries: Vec<String>,
    detect: BTreeMap<u32, OpenSpan>,
    exec: BTreeMap<u32, OpenSpan>,
    /// Loop ids that already have a thread-name metadata entry.
    named: BTreeMap<u32, ()>,
    error: Option<io::Error>,
}

impl PerfettoSink<BufWriter<File>> {
    /// A sink writing to `path` (truncating) on finish.
    ///
    /// # Errors
    ///
    /// Returns the underlying error if the file can't be created.
    pub fn create(path: impl AsRef<Path>) -> io::Result<PerfettoSink<BufWriter<File>>> {
        Ok(PerfettoSink::new(BufWriter::new(File::create(path)?)))
    }
}

impl<W: Write> PerfettoSink<W> {
    /// A sink over `out`.
    pub fn new(out: W) -> PerfettoSink<W> {
        PerfettoSink {
            out: Some(out),
            entries: Vec::new(),
            detect: BTreeMap::new(),
            exec: BTreeMap::new(),
            named: BTreeMap::new(),
            error: None,
        }
    }

    /// The first IO error encountered, if any (taking clears it).
    pub fn take_error(&mut self) -> Option<io::Error> {
        self.error.take()
    }

    fn name_track(&mut self, tid: u32) {
        if self.named.insert(tid, ()).is_none() {
            let label = if tid == 0 { "simulation".to_string() } else { format!("loop {tid:#x}") };
            self.entries.push(format!(
                "{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":0,\"tid\":{tid},\"args\":{{\"name\":{}}}}}",
                json_str(&label)
            ));
        }
    }

    fn slice(&mut self, tid: u32, name: &str, cat: &str, start: u64, end: u64) {
        self.name_track(tid);
        self.entries.push(format!(
            "{{\"ph\":\"X\",\"name\":{},\"cat\":{},\"pid\":0,\"tid\":{tid},\"ts\":{start},\"dur\":{}}}",
            json_str(name),
            json_str(cat),
            end.saturating_sub(start).max(1)
        ));
    }

    fn instant(&mut self, tid: u32, name: &str, cat: &str, ts: u64, args: &[(&str, String)]) {
        self.name_track(tid);
        let mut entry = format!(
            "{{\"ph\":\"i\",\"name\":{},\"cat\":{},\"s\":\"t\",\"pid\":0,\"tid\":{tid},\"ts\":{ts}",
            json_str(name),
            json_str(cat)
        );
        if !args.is_empty() {
            entry.push_str(",\"args\":{");
            for (i, (k, v)) in args.iter().enumerate() {
                if i > 0 {
                    entry.push(',');
                }
                let _ = write!(entry, "{}:{v}", json_str(k));
            }
            entry.push('}');
        }
        entry.push('}');
        self.entries.push(entry);
    }

    fn close_detect(&mut self, loop_id: u32, cycle: u64, verdict: &str) {
        if let Some(span) = self.detect.remove(&loop_id) {
            let name = format!("{} → {verdict}", span.name);
            self.slice(loop_id, &name, "detect", span.start, cycle);
        }
    }

    fn close_exec(&mut self, loop_id: u32, cycle: u64, outcome: &str) {
        if let Some(span) = self.exec.remove(&loop_id) {
            let name = format!("{} ({outcome})", span.name);
            self.slice(loop_id, &name, "execute", span.start, cycle);
        }
    }

    /// The complete Chrome trace JSON document for everything recorded
    /// so far (open spans rendered as zero-length slices at their start).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
        let mut first = true;
        let mut push = |out: &mut String, e: &str| {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(e);
        };
        for e in &self.entries {
            push(&mut out, e);
        }
        for (source, cat) in [(&self.detect, "detect"), (&self.exec, "execute")] {
            for (&tid, span) in source {
                let entry = format!(
                    "{{\"ph\":\"X\",\"name\":{},\"cat\":{},\"pid\":0,\"tid\":{tid},\"ts\":{},\"dur\":1}}",
                    json_str(&format!("{} (unterminated)", span.name)),
                    json_str(cat),
                    span.start
                );
                push(&mut out, &entry);
            }
        }
        out.push_str("]}");
        out
    }
}

impl<W: Write> TraceSink for PerfettoSink<W> {
    fn record(&mut self, ev: &Event) {
        let cycle = ev.cycle();
        match *ev {
            Event::RunStarted { pc, .. } => {
                self.instant(0, "run-started", "sim", cycle, &[("pc", pc.to_string())]);
            }
            Event::RunFinished { committed, halted, .. } => {
                self.instant(
                    0,
                    "run-finished",
                    "sim",
                    cycle,
                    &[("committed", committed.to_string()), ("halted", halted.to_string())],
                );
            }
            Event::SimFault { kind, pc, .. } => {
                self.instant(
                    0,
                    &format!("sim-fault: {kind}"),
                    "sim",
                    cycle,
                    &[("pc", pc.to_string())],
                );
            }
            Event::LoopDetected { loop_id, end_pc, .. } => {
                // Re-detection of a still-open analysis restarts the span.
                self.detect.insert(
                    loop_id,
                    OpenSpan { start: cycle, name: format!("detect {loop_id:#x}-{end_pc:#x}") },
                );
            }
            Event::StageActivated { stage, loop_id, dsa_cycles, .. } => {
                self.instant(
                    loop_id,
                    stage.name(),
                    "stage",
                    cycle,
                    &[("dsa_cycles", dsa_cycles.to_string())],
                );
            }
            Event::CacheAccess { cache, outcome, loop_id, count, .. } => {
                self.instant(
                    loop_id,
                    &format!("{} {}", cache.name(), outcome.name()),
                    "cache",
                    cycle,
                    &[("count", count.to_string())],
                );
            }
            Event::DependencyVerdict { loop_id, pairs, distance, .. } => {
                let dist = distance.map_or("null".to_string(), |d| d.to_string());
                self.instant(
                    loop_id,
                    "cidp-verdict",
                    "stage",
                    cycle,
                    &[("pairs", pairs.to_string()), ("distance", dist)],
                );
            }
            Event::LoopClassified { loop_id, class, .. } => {
                self.instant(loop_id, &format!("class: {class}"), "lifecycle", cycle, &[]);
                if let Some(span) = self.detect.get_mut(&loop_id) {
                    span.name = format!("detect {class}");
                }
            }
            Event::LoopVectorized { loop_id, class, planned, .. } => {
                self.close_detect(loop_id, cycle, "vectorized");
                self.exec.insert(
                    loop_id,
                    OpenSpan { start: cycle, name: format!("vector {class} ×{planned}") },
                );
            }
            Event::LoopRejected { loop_id, reason, .. } => {
                self.close_detect(loop_id, cycle, reason);
            }
            Event::LoopRolledBack { loop_id, reason, .. } => {
                self.instant(loop_id, &format!("rollback: {reason}"), "lifecycle", cycle, &[]);
                self.close_detect(loop_id, cycle, "rolled-back");
                self.close_exec(loop_id, cycle, "rolled-back");
            }
            Event::LoopFinished { loop_id, iters, .. } => {
                self.close_exec(loop_id, cycle, &format!("{iters} iters"));
            }
            Event::EnginePoisoned { during, .. } => {
                self.instant(0, &format!("poisoned during {during}"), "lifecycle", cycle, &[]);
            }
            Event::FaultInjected { site, .. } => {
                self.instant(0, &format!("fault: {site}"), "fault", cycle, &[]);
            }
            Event::PartialChunk { loop_id, chunk_iters, .. } => {
                self.instant(
                    loop_id,
                    "partial-chunk",
                    "execute",
                    cycle,
                    &[("iters", chunk_iters.to_string())],
                );
            }
            Event::SpeculationResolved { loop_id, kind, used, discarded, .. } => {
                self.instant(
                    loop_id,
                    &format!("speculation {}", kind.name()),
                    "execute",
                    cycle,
                    &[("used", used.to_string()), ("discarded", discarded.to_string())],
                );
            }
            Event::SupervisorRetry { workload, attempt, backoff_ms, .. } => {
                self.instant(
                    0,
                    &format!("retry {workload}"),
                    "supervisor",
                    cycle,
                    &[("attempt", attempt.to_string()), ("backoff_ms", backoff_ms.to_string())],
                );
            }
            Event::WorkerPanicked { workload, .. } => {
                self.instant(0, &format!("panic {workload}"), "supervisor", cycle, &[]);
            }
            Event::DeadlineExceeded { workload, deadline_ms, .. } => {
                self.instant(
                    0,
                    &format!("deadline {workload}"),
                    "supervisor",
                    cycle,
                    &[("deadline_ms", deadline_ms.to_string())],
                );
            }
            Event::BreakerOpen { workload, failures, .. } => {
                self.instant(
                    0,
                    &format!("breaker-open {workload}"),
                    "supervisor",
                    cycle,
                    &[("failures", failures.to_string())],
                );
            }
            Event::BreakerHalfOpen { workload, cooldown_ms, .. } => {
                self.instant(
                    0,
                    &format!("breaker-half-open {workload}"),
                    "supervisor",
                    cycle,
                    &[("cooldown_ms", cooldown_ms.to_string())],
                );
            }
            Event::BreakerClosed { workload, .. } => {
                self.instant(0, &format!("breaker-closed {workload}"), "supervisor", cycle, &[]);
            }
            Event::JobAdmitted { job, shard, queue_depth, .. } => {
                self.instant(
                    0,
                    &format!("job {job} admitted"),
                    "service",
                    cycle,
                    &[("shard", shard.to_string()), ("queue_depth", queue_depth.to_string())],
                );
            }
            Event::JobShed { reason, .. } => {
                self.instant(0, &format!("job shed: {reason}"), "service", cycle, &[]);
            }
            Event::JobCompleted { job, shard, migrations, latency_ms, .. } => {
                self.instant(
                    0,
                    &format!("job {job} completed"),
                    "service",
                    cycle,
                    &[
                        ("shard", shard.to_string()),
                        ("migrations", migrations.to_string()),
                        ("latency_ms", latency_ms.to_string()),
                    ],
                );
            }
            Event::SessionCheckpointed { job, shard, bytes, .. } => {
                self.instant(
                    0,
                    &format!("job {job} checkpointed"),
                    "service",
                    cycle,
                    &[("shard", shard.to_string()), ("bytes", bytes.to_string())],
                );
            }
            Event::SessionMigrated { job, from_shard, .. } => {
                self.instant(
                    0,
                    &format!("job {job} migrated"),
                    "service",
                    cycle,
                    &[("from_shard", from_shard.to_string())],
                );
            }
            Event::ShardKilled { shard, drained, .. } => {
                self.instant(
                    0,
                    &format!("shard {shard} killed"),
                    "service",
                    cycle,
                    &[("drained", drained.to_string())],
                );
            }
            Event::ShardRecovered { shard, .. } => {
                self.instant(0, &format!("shard {shard} recovered"), "service", cycle, &[]);
            }
            Event::SnapshotRestored { bytes, cache_entries, .. } => {
                self.instant(
                    0,
                    "snapshot-restored",
                    "snapshot",
                    cycle,
                    &[("bytes", bytes.to_string()), ("cache_entries", cache_entries.to_string())],
                );
            }
            Event::SnapshotRejected { kind, .. } => {
                self.instant(0, &format!("snapshot-rejected: {kind}"), "snapshot", cycle, &[]);
            }
        }
    }

    fn finish(&mut self) {
        let Some(mut out) = self.out.take() else { return };
        let doc = self.render_json();
        if let Err(e) = out.write_all(doc.as_bytes()).and_then(|()| out.flush()) {
            self.error = Some(e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{self, Value};

    #[test]
    fn renders_a_loadable_chrome_trace() {
        let mut sink = PerfettoSink::new(Vec::new());
        sink.record(&Event::RunStarted { pc: 0, cycle: 0 });
        sink.record(&Event::LoopDetected { loop_id: 16, end_pc: 36, cycle: 100 });
        sink.record(&Event::LoopClassified { loop_id: 16, class: "count", cycle: 140 });
        sink.record(&Event::LoopVectorized { loop_id: 16, class: "count", planned: 60, peeled: 0, cycle: 150 });
        sink.record(&Event::LoopFinished { loop_id: 16, iters: 64, cycle: 400 });
        sink.record(&Event::RunFinished { cycle: 500, committed: 450, halted: true });
        let doc = sink.render_json();
        let v = json::parse(&doc).expect("valid JSON");
        let Some(Value::Arr(events)) = v.get("traceEvents") else { panic!("traceEvents array") };
        // Both lifecycle slices are complete ("X") events on tid 16.
        let slices: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Value::as_str) == Some("X"))
            .collect();
        assert_eq!(slices.len(), 2);
        for s in &slices {
            assert_eq!(s.get("tid").and_then(Value::as_u64), Some(16));
        }
        assert!(doc.contains("detect count"));
        assert!(doc.contains("vector count"));
        assert!(doc.contains("thread_name"));
    }

    #[test]
    fn finish_writes_once(){
        let mut sink = PerfettoSink::new(Vec::new());
        sink.record(&Event::FaultInjected { site: "corrupt-template", cycle: 7 });
        sink.finish();
        sink.finish();
        assert!(sink.take_error().is_none());
    }

    #[test]
    fn open_spans_survive_as_unterminated_slices() {
        let mut sink = PerfettoSink::new(Vec::new());
        sink.record(&Event::LoopDetected { loop_id: 4, end_pc: 8, cycle: 10 });
        let doc = sink.render_json();
        assert!(doc.contains("unterminated"));
        json::parse(&doc).expect("still valid JSON");
    }
}
