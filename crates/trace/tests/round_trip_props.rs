//! Property proofs for the fleet-analytics encodings:
//!
//! 1. **Lossless JSONL ⇄ binary round-trip** — for arbitrary valid
//!    event streams, `events → JSONL → parse → tracebin encode →
//!    decode` reproduces the exact event stream, and re-serializing to
//!    JSONL is byte-identical. (Acceptance criterion for
//!    `dsa-tracebin/v1`.)
//! 2. **Sampling coherence** — a [`SamplingSink`] keeps or drops each
//!    loop *lifecycle* whole, never partially, keeps every loop-less
//!    event, and two samplers with the same seed make identical
//!    choices (the property that makes sampled traces queryable and
//!    migration-stable).
//! 3. **Metrics wire round-trip** — the registry a sampled stream
//!    folds into survives `to_wire`/`from_wire` exactly.

use std::collections::{BTreeMap, BTreeSet};

use dsa_trace::{
    decode, encode, parse_document, Collector, Event, JsonlSink, MetricsRegistry, SamplingSink,
    SpecKind, Stage, TraceSink,
};
use proptest::prelude::*;

const CLASSES: &[&str] = &["count", "conditional", "sentinel", "strided", "unclassified"];
const REASONS: &[&str] =
    &["irregular-stride", "dependency", "template-mismatch", "short-trip", "cache-conflict"];
const SITES: &[&str] =
    &["corrupt-template", "lying-sentinel", "flipped-condition", "dropped-vcache", "skipped-flush"];
const WORKLOADS: &[&str] = &["matmul", "qsort", "susan", "rgb-gray", "bitcounts", "adpcm"];
const KINDS: &[&str] = &["step-budget-exceeded", "lane-error", "checksum-mismatch", "bad-crc"];

fn vocab(words: &'static [&'static str]) -> impl Strategy<Value = &'static str> {
    (0..words.len()).prop_map(move |i| words[i])
}

fn arb_cycle() -> impl Strategy<Value = u64> {
    // Mostly realistic small cycles (delta-friendly), sometimes the
    // full u64 range so wrapping deltas are exercised.
    prop_oneof![
        (0u64..100_000).boxed(),
        (0u64..=u64::MAX).boxed(),
        Just(0u64).boxed(),
        Just(u64::MAX).boxed(),
    ]
}

fn arb_u32() -> impl Strategy<Value = u32> {
    prop_oneof![(0u32..10_000).boxed(), (0u32..=u32::MAX).boxed()]
}

fn arb_u64() -> impl Strategy<Value = u64> {
    prop_oneof![(0u64..1_000_000).boxed(), (0u64..=u64::MAX).boxed()]
}

fn arb_stage() -> impl Strategy<Value = Stage> {
    (0..Stage::ALL.len()).prop_map(|i| Stage::ALL[i])
}

fn arb_event() -> impl Strategy<Value = Event> {
    use dsa_trace::{CacheKind, CacheOutcome};
    let cache = (0usize..3).prop_map(|i| [CacheKind::Dsa, CacheKind::Verification, CacheKind::ArrayMap][i]);
    let outcome = (0usize..4).prop_map(|i| {
        [CacheOutcome::Hit, CacheOutcome::Miss, CacheOutcome::Insert, CacheOutcome::Evict][i]
    });
    let spec = (0usize..2).prop_map(|i| [SpecKind::Sentinel, SpecKind::Conditional][i]);
    prop_oneof![
        (arb_u32(), arb_cycle()).prop_map(|(pc, cycle)| Event::RunStarted { pc, cycle }),
        (arb_cycle(), arb_u64(), any::<bool>())
            .prop_map(|(cycle, committed, halted)| Event::RunFinished { cycle, committed, halted }),
        (vocab(KINDS), arb_u32(), arb_cycle())
            .prop_map(|(kind, pc, cycle)| Event::SimFault { kind, pc, cycle }),
        (arb_u32(), arb_u32(), arb_cycle())
            .prop_map(|(loop_id, end_pc, cycle)| Event::LoopDetected { loop_id, end_pc, cycle }),
        (arb_stage(), arb_u32(), arb_u64(), arb_cycle()).prop_map(
            |(stage, loop_id, dsa_cycles, cycle)| Event::StageActivated {
                stage,
                loop_id,
                dsa_cycles,
                cycle
            }
        ),
        (cache, outcome, arb_u32(), arb_u32(), arb_u64(), arb_cycle()).prop_map(
            |(cache, outcome, loop_id, count, dsa_cycles, cycle)| Event::CacheAccess {
                cache,
                outcome,
                loop_id,
                count,
                dsa_cycles,
                cycle
            }
        ),
        (
            arb_u32(),
            arb_u32(),
            prop_oneof![Just(None).boxed(), arb_u32().prop_map(Some).boxed()],
            arb_u64(),
            arb_cycle()
        )
            .prop_map(|(loop_id, pairs, distance, dsa_cycles, cycle)| {
                Event::DependencyVerdict { loop_id, pairs, distance, dsa_cycles, cycle }
            }),
        (arb_u32(), vocab(CLASSES), arb_cycle())
            .prop_map(|(loop_id, class, cycle)| Event::LoopClassified { loop_id, class, cycle }),
        (arb_u32(), vocab(CLASSES), arb_u32(), arb_u32(), arb_cycle()).prop_map(
            |(loop_id, class, planned, peeled, cycle)| Event::LoopVectorized {
                loop_id,
                class,
                planned,
                peeled,
                cycle
            }
        ),
        (arb_u32(), vocab(CLASSES), vocab(REASONS), arb_cycle()).prop_map(
            |(loop_id, class, reason, cycle)| Event::LoopRejected { loop_id, class, reason, cycle }
        ),
        (arb_u32(), vocab(CLASSES), vocab(REASONS), arb_cycle()).prop_map(
            |(loop_id, class, reason, cycle)| Event::LoopRolledBack { loop_id, class, reason, cycle }
        ),
        (arb_u32(), arb_u32(), arb_cycle())
            .prop_map(|(loop_id, iters, cycle)| Event::LoopFinished { loop_id, iters, cycle }),
        (vocab(REASONS), vocab(CLASSES), arb_cycle())
            .prop_map(|(during, expected, cycle)| Event::EnginePoisoned { during, expected, cycle }),
        (vocab(SITES), arb_cycle()).prop_map(|(site, cycle)| Event::FaultInjected { site, cycle }),
        (arb_u32(), arb_u32(), arb_u64(), arb_cycle()).prop_map(
            |(loop_id, chunk_iters, dsa_cycles, cycle)| Event::PartialChunk {
                loop_id,
                chunk_iters,
                dsa_cycles,
                cycle
            }
        ),
        (arb_u32(), spec, arb_u64(), arb_u64(), arb_u64(), arb_cycle()).prop_map(
            |(loop_id, kind, injected, used, discarded, cycle)| Event::SpeculationResolved {
                loop_id,
                kind,
                injected,
                used,
                discarded,
                cycle
            }
        ),
        (vocab(WORKLOADS), arb_u32(), arb_u64(), arb_cycle()).prop_map(
            |(workload, attempt, backoff_ms, cycle)| Event::SupervisorRetry {
                workload,
                attempt,
                backoff_ms,
                cycle
            }
        ),
        (vocab(WORKLOADS), arb_cycle())
            .prop_map(|(workload, cycle)| Event::WorkerPanicked { workload, cycle }),
        (vocab(WORKLOADS), arb_u64(), arb_cycle()).prop_map(|(workload, deadline_ms, cycle)| {
            Event::DeadlineExceeded { workload, deadline_ms, cycle }
        }),
        (vocab(WORKLOADS), arb_u32(), arb_cycle())
            .prop_map(|(workload, failures, cycle)| Event::BreakerOpen { workload, failures, cycle }),
        (vocab(WORKLOADS), arb_u64(), arb_cycle()).prop_map(|(workload, cooldown_ms, cycle)| {
            Event::BreakerHalfOpen { workload, cooldown_ms, cycle }
        }),
        (vocab(WORKLOADS), arb_cycle())
            .prop_map(|(workload, cycle)| Event::BreakerClosed { workload, cycle }),
        (arb_u64(), arb_u32(), arb_u32(), arb_cycle()).prop_map(
            |(job, shard, queue_depth, cycle)| Event::JobAdmitted { job, shard, queue_depth, cycle }
        ),
        (vocab(REASONS), arb_cycle()).prop_map(|(reason, cycle)| Event::JobShed { reason, cycle }),
        (arb_u64(), arb_u32(), any::<bool>(), arb_u32(), arb_u64(), arb_cycle()).prop_map(
            |(job, shard, cache_hit, migrations, latency_ms, cycle)| Event::JobCompleted {
                job,
                shard,
                cache_hit,
                migrations,
                latency_ms,
                cycle
            }
        ),
        (arb_u64(), arb_u32(), arb_u64(), arb_u64(), arb_cycle()).prop_map(
            |(job, shard, bytes, commits, cycle)| Event::SessionCheckpointed {
                job,
                shard,
                bytes,
                commits,
                cycle
            }
        ),
        (arb_u64(), arb_u32(), arb_cycle())
            .prop_map(|(job, from_shard, cycle)| Event::SessionMigrated { job, from_shard, cycle }),
        (arb_u32(), arb_u32(), arb_cycle())
            .prop_map(|(shard, drained, cycle)| Event::ShardKilled { shard, drained, cycle }),
        (arb_u32(), arb_cycle()).prop_map(|(shard, cycle)| Event::ShardRecovered { shard, cycle }),
        (arb_u64(), arb_u64(), arb_cycle()).prop_map(|(bytes, cache_entries, cycle)| {
            Event::SnapshotRestored { bytes, cache_entries, cycle }
        }),
        (vocab(KINDS), arb_cycle()).prop_map(|(kind, cycle)| Event::SnapshotRejected { kind, cycle }),
    ]
}

fn to_jsonl(events: &[Event]) -> String {
    let mut sink = JsonlSink::new(Vec::new());
    for ev in events {
        sink.record(ev);
    }
    sink.finish();
    String::from_utf8(sink.into_inner()).expect("JSONL is UTF-8")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn jsonl_to_binary_to_jsonl_is_lossless(
        events in prop::collection::vec(arb_event(), 1..160),
    ) {
        // events → JSONL → typed events.
        let text = to_jsonl(&events);
        let (parsed, warnings) = parse_document(&text).expect("own JSONL parses");
        prop_assert!(warnings.is_empty(), "own output warned: {warnings:?}");
        prop_assert_eq!(&parsed, &events);
        // typed → binary → typed.
        let bin = encode(&parsed);
        let back = decode(&bin).expect("own binary decodes");
        prop_assert_eq!(&back, &events);
        // …and back out to byte-identical JSONL.
        prop_assert_eq!(to_jsonl(&back), text);
    }

    #[test]
    fn binary_survives_streaming_writer_block_splits(
        events in prop::collection::vec(arb_event(), 0..64),
    ) {
        let bytes = encode(&events);
        let decoded = decode(&bytes).expect("decodes");
        prop_assert_eq!(decoded, events);
    }

    #[test]
    fn sampling_keeps_lifecycles_whole(
        events in prop::collection::vec(arb_event(), 0..240),
        seed in any::<u64>(),
        rate in 0u32..12,
    ) {
        let mut sampler = SamplingSink::new(Collector::new(), seed, rate);
        for ev in &events {
            sampler.record(ev);
        }
        let kept = &sampler.inner().events;

        // Partition the original stream per loop id.
        let mut original: BTreeMap<u32, Vec<&Event>> = BTreeMap::new();
        let mut loopless = 0usize;
        for ev in &events {
            match ev.loop_id() {
                Some(id) => original.entry(id).or_default().push(ev),
                None => loopless += 1,
            }
        }
        let mut kept_by_loop: BTreeMap<u32, usize> = BTreeMap::new();
        let mut kept_loopless = 0usize;
        for ev in kept {
            match ev.loop_id() {
                Some(id) => *kept_by_loop.entry(id).or_default() += 1,
                None => kept_loopless += 1,
            }
        }
        prop_assert_eq!(kept_loopless, loopless, "loop-less events must always pass");
        for (id, evs) in &original {
            let got = kept_by_loop.get(id).copied().unwrap_or(0);
            prop_assert!(
                got == 0 || got == evs.len(),
                "loop {id}: kept {got} of {} — lifecycle shredded", evs.len()
            );
            // The verdict must be reproducible by a second sampler
            // (e.g. after a shard migration re-attaches a fresh sink).
            let twin = SamplingSink::new(Collector::new(), seed, rate);
            prop_assert_eq!(twin.keeps_loop(*id), got != 0);
        }
        // Order of survivors is preserved.
        let expected: Vec<&Event> = events
            .iter()
            .filter(|ev| ev.loop_id().is_none_or(|id| kept_by_loop.contains_key(&id)))
            .collect();
        let got: Vec<&Event> = kept.iter().collect();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn sampled_metrics_survive_the_wire(
        events in prop::collection::vec(arb_event(), 0..160),
        seed in any::<u64>(),
    ) {
        let mut sampler = SamplingSink::new(MetricsRegistry::new(), seed, 4);
        for ev in &events {
            sampler.record(ev);
        }
        let m = sampler.into_inner();
        let back = MetricsRegistry::from_wire(&m.to_wire()).expect("wire decodes");
        prop_assert_eq!(back, m);
    }
}

#[test]
fn sampled_binary_stream_stays_queryable() {
    // End-to-end: sample a stream, write it binary, read it back, and
    // check the rollup only contains whole lifecycles.
    let mut events = Vec::new();
    for loop_id in (100u32..180).step_by(4) {
        events.push(Event::LoopDetected { loop_id, end_pc: loop_id + 24, cycle: u64::from(loop_id) });
        events.push(Event::LoopClassified { loop_id, class: "count", cycle: u64::from(loop_id) + 1 });
        events.push(Event::LoopFinished { loop_id, iters: 32, cycle: u64::from(loop_id) + 90 });
    }
    let mut sampler = SamplingSink::new(Collector::new(), 0xFEED, 3);
    for ev in &events {
        sampler.record(ev);
    }
    let sampled = sampler.into_inner().events;
    let bytes = encode(&sampled);
    let back = decode(&bytes).expect("decodes");
    let ids: BTreeSet<u32> = back.iter().filter_map(|e| e.loop_id()).collect();
    for id in &ids {
        let n = back.iter().filter(|e| e.loop_id() == Some(*id)).count();
        assert_eq!(n, 3, "loop {id} partially present after sample+encode+decode");
    }
    assert!(!ids.is_empty() && ids.len() < 20, "rate 3 should keep a strict subset");
}
