//! Cross-Iteration Dependency Prediction — equations 4.1–4.5 of the
//! dissertation.
//!
//! Given the addresses observed in the second and third loop iterations
//! and the predicted trip count, the CIDP extrapolates every load
//! stream's future addresses and checks whether any store address of
//! iteration 2 falls inside a load stream's future range. If it does the
//! loop has a cross-iteration dependency (CID); the distance in
//! iterations bounds how much of the loop can still be vectorized
//! (partial vectorization, §4.5).

/// One affine access stream, reconstructed from two observations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stream {
    /// Address observed in the second iteration (`MRead[2]` / `MWrite[2]`).
    pub addr2: i64,
    /// Per-iteration address gap (`MGap`, equation 4.5).
    pub gap: i64,
    /// Whether the stream writes.
    pub is_write: bool,
    /// Access width in bytes.
    pub bytes: u8,
}

impl Stream {
    /// Predicted address at iteration `i` (iterations numbered from 1;
    /// the stream was observed at iteration 2).
    pub fn addr_at(&self, i: i64) -> i64 {
        self.addr2 + self.gap * (i - 2)
    }
}

/// Outcome of the prediction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CidpOutcome {
    /// No cross-iteration dependency: the whole remaining range can be
    /// vectorized.
    NoDependency,
    /// A dependency `distance` iterations apart: chunks of up to
    /// `distance` iterations can be vectorized (partial vectorization).
    Dependency {
        /// Minimum dependency distance in iterations (≥ 1).
        distance: u32,
    },
}

/// Runs the prediction over all stream pairs.
///
/// `trip` is the predicted total number of iterations (the speculative
/// range for sentinel loops). Returns the combined outcome: the minimum
/// dependency distance over all (load, store) pairs, or
/// [`CidpOutcome::NoDependency`].
///
/// # Examples
///
/// The dissertation's Figure 13: a read stream at `0x100` with gap 4
/// and a store at `0x108` collide two iterations apart.
///
/// ```
/// use dsa_core::{predict, CidpOutcome, Stream};
///
/// let streams = [
///     Stream { addr2: 0x100, gap: 4, is_write: false, bytes: 4 },
///     Stream { addr2: 0x108, gap: 4, is_write: true, bytes: 4 },
/// ];
/// assert_eq!(predict(&streams, 10), CidpOutcome::Dependency { distance: 2 });
/// ```
///
/// Overlap of a store with a *future* load address means a true
/// (read-after-write) dependency. A store landing exactly on the load
/// stream's same-iteration address (`distance == 0`) is an intra-
/// iteration access (`v[i] = v[i] + …`) and is not a cross-iteration
/// dependency. Write/write and anti-dependencies between streams with
/// equal gaps resolve in lane order and are treated as safe, matching
/// the paper's read/write formulation.
pub fn predict(streams: &[Stream], trip: u32) -> CidpOutcome {
    let mut min_distance: Option<u32> = None;
    let last = trip as i64;
    for w in streams.iter().filter(|s| s.is_write) {
        for r in streams.iter().filter(|s| !s.is_write) {
            if r.gap == 0 {
                // A loop-invariant (re-read) location written by the loop
                // is a dependency every iteration.
                if overlaps(w.addr2, w.bytes, r.addr2, r.bytes) {
                    return CidpOutcome::Dependency { distance: 1 };
                }
                continue;
            }
            // Equation 4.4: MRead[last] = MRead[2] + MGap * (last - 2).
            let first = r.addr_at(3);
            let last_addr = r.addr_at(last);
            let (lo, hi) = if r.gap > 0 { (first, last_addr) } else { (last_addr, first) };
            // Equations 4.1–4.3: is MWrite[2] within [MRead[3], MRead[last]]?
            let w_lo = w.addr2;
            let w_hi = w.addr2 + w.bytes as i64 - 1;
            if w_hi < lo || w_lo > hi + r.bytes as i64 - 1 {
                continue; // NCID for this pair
            }
            // CID: the read at iteration 2 + d touches the iteration-2
            // store. Distance in iterations:
            let d = (w.addr2 - r.addr2).abs() / r.gap.abs();
            let d = u32::try_from(d.max(1)).unwrap_or(u32::MAX);
            min_distance = Some(min_distance.map_or(d, |m| m.min(d)));
        }
    }
    match min_distance {
        Some(distance) => CidpOutcome::Dependency { distance },
        None => CidpOutcome::NoDependency,
    }
}

fn overlaps(a: i64, ab: u8, b: i64, bb: u8) -> bool {
    a < b + bb as i64 && b < a + ab as i64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rd(addr2: i64, gap: i64) -> Stream {
        Stream { addr2, gap, is_write: false, bytes: 4 }
    }

    fn wr(addr2: i64, gap: i64) -> Stream {
        Stream { addr2, gap, is_write: true, bytes: 4 }
    }

    #[test]
    fn paper_example_figure_13() {
        // MRead[2]=0x100, MRead[3]=0x104 -> MGap=4; 10 iterations;
        // MWrite[2]=0x108 is within [0x104, 0x120] -> CID.
        let streams = [rd(0x100, 4), wr(0x108, 4)];
        match predict(&streams, 10) {
            CidpOutcome::Dependency { distance } => assert_eq!(distance, 2),
            o => panic!("expected dependency, got {o:?}"),
        }
    }

    #[test]
    fn disjoint_streams_have_no_dependency() {
        // v[i] = a[i] + b[i]: write stream far from both read streams.
        let streams = [rd(0x1000, 4), rd(0x2000, 4), wr(0x3000, 4)];
        assert_eq!(predict(&streams, 400), CidpOutcome::NoDependency);
    }

    #[test]
    fn same_element_read_write_is_safe() {
        // c[i] = c[i] + x: the write lands exactly on the read's
        // same-iteration address, never on a future one.
        let streams = [rd(0x100, 4), wr(0x100, 4)];
        assert_eq!(predict(&streams, 1000), CidpOutcome::NoDependency);
    }

    #[test]
    fn classic_recurrence_distance_one() {
        // v[i] = v[i-1] + b[i]: read at 0x0FC, write at 0x100.
        let streams = [rd(0x0FC, 4), rd(0x200, 4), wr(0x100, 4)];
        match predict(&streams, 100) {
            CidpOutcome::Dependency { distance } => assert_eq!(distance, 1),
            o => panic!("expected dependency, got {o:?}"),
        }
    }

    #[test]
    fn figure_14_partial_distance() {
        // Dependency between iterations 2 and 11 via address 0x124:
        // read stream at 0x100 gap 4 reads 0x124 at iteration 11;
        // write stream writes 0x124 at iteration 2.
        let streams = [rd(0x100, 4), wr(0x124, 4)];
        match predict(&streams, 40) {
            CidpOutcome::Dependency { distance } => assert_eq!(distance, 9),
            o => panic!("expected dependency, got {o:?}"),
        }
    }

    #[test]
    fn dependency_beyond_trip_is_safe() {
        // The write is 100 elements ahead but the loop only runs 20 more
        // iterations -> the read never reaches it.
        let streams = [rd(0x100, 4), wr(0x100 + 100 * 4, 4)];
        assert_eq!(predict(&streams, 20), CidpOutcome::NoDependency);
    }

    #[test]
    fn invariant_reload_is_dependency() {
        // Reading a fixed location that the loop also writes.
        let streams = [rd(0x500, 0), wr(0x500, 4)];
        assert_eq!(predict(&streams, 10), CidpOutcome::Dependency { distance: 1 });
    }

    #[test]
    fn negative_gap_streams() {
        // Backward-walking read overlapping a store.
        let streams = [rd(0x200, -4), wr(0x1F0, -4)];
        match predict(&streams, 50) {
            CidpOutcome::Dependency { distance } => assert_eq!(distance, 4),
            o => panic!("expected dependency, got {o:?}"),
        }
    }

    #[test]
    fn byte_streams_partial_overlap() {
        // 1-byte reads, 4-byte store overlapping the future read range.
        let streams = [
            Stream { addr2: 0x100, gap: 1, is_write: false, bytes: 1 },
            Stream { addr2: 0x105, gap: 1, is_write: true, bytes: 4 },
        ];
        assert!(matches!(predict(&streams, 64), CidpOutcome::Dependency { .. }));
    }
}
