//! The DSA's two private memories: the DSA cache (verified-loop store)
//! and the Verification Cache (iteration-2 data addresses).

use std::collections::HashMap;

use crate::plan::LoopTemplate;
use crate::stats::LoopClass;

/// What the DSA cache knows about a loop ID.
#[derive(Debug, Clone, PartialEq)]
pub enum CachedKind {
    /// Verified vectorizable: the stored template rebuilds the SIMD work.
    Vectorizable(LoopTemplate),
    /// Verified non-vectorizable (or an outer loop of a nest); the DSA
    /// skips analysis on re-entry.
    NonVectorizable(LoopClass),
}

impl CachedKind {
    /// Approximate storage footprint of the entry, in bytes, modelling
    /// the 8 KB capacity of the hardware structure.
    pub(crate) fn size_bytes(&self) -> u32 {
        match self {
            // ID + range + class + per-stream records + per-arm records.
            CachedKind::Vectorizable(t) => {
                16 + 8 * t.streams.len() as u32 + 12 * t.arms.len() as u32
            }
            CachedKind::NonVectorizable(_) => 8,
        }
    }
}

#[derive(Debug, Clone)]
struct Entry {
    kind: CachedKind,
    last_use: u64,
}

/// The DSA cache: loop ID (first-instruction PC) → verdict + SIMD
/// template, with LRU replacement under a byte-capacity budget.
///
/// # Examples
///
/// ```
/// use dsa_core::{CachedKind, DsaCache, LoopClass};
///
/// let mut cache = DsaCache::new(8 * 1024);
/// assert!(cache.probe(0x40).is_none());
/// cache.insert(0x40, CachedKind::NonVectorizable(LoopClass::NonVectorizable));
/// assert!(cache.probe(0x40).is_some());
/// ```
#[derive(Debug, Clone)]
pub struct DsaCache {
    capacity_bytes: u32,
    used_bytes: u32,
    entries: HashMap<u32, Entry>,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl DsaCache {
    /// Creates an empty cache with the given capacity.
    pub fn new(capacity_bytes: u32) -> DsaCache {
        DsaCache {
            capacity_bytes,
            used_bytes: 0,
            entries: HashMap::new(),
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Looks up a loop ID, updating LRU state and hit/miss counters.
    pub fn probe(&mut self, loop_id: u32) -> Option<&CachedKind> {
        self.tick += 1;
        match self.entries.get_mut(&loop_id) {
            Some(e) => {
                e.last_use = self.tick;
                self.hits += 1;
                Some(&e.kind)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Reads an entry without touching statistics or LRU order.
    pub fn peek(&self, loop_id: u32) -> Option<&CachedKind> {
        self.entries.get(&loop_id).map(|e| &e.kind)
    }

    /// Mutable access to a vectorizable template (e.g. to update a
    /// sentinel loop's speculative range).
    pub fn template_mut(&mut self, loop_id: u32) -> Option<&mut LoopTemplate> {
        match self.entries.get_mut(&loop_id) {
            Some(Entry { kind: CachedKind::Vectorizable(t), .. }) => Some(t),
            _ => None,
        }
    }

    /// Inserts (or replaces) an entry, evicting LRU entries if the
    /// capacity would be exceeded. Returns the number of entries
    /// displaced, so the caller can report the evictions (the engine
    /// turns them into `cache-access`/`evict` telemetry events).
    pub fn insert(&mut self, loop_id: u32, kind: CachedKind) -> u32 {
        self.tick += 1;
        if let Some(old) = self.entries.remove(&loop_id) {
            self.used_bytes -= old.kind.size_bytes();
        }
        let mut evicted = 0u32;
        let size = kind.size_bytes();
        while self.used_bytes + size > self.capacity_bytes {
            // LRU victim selection; the loop guard plus this pattern
            // keeps the path panic-free on an empty map.
            let Some(victim) =
                self.entries.iter().min_by_key(|(_, e)| e.last_use).map(|(&k, _)| k)
            else {
                break;
            };
            if let Some(e) = self.entries.remove(&victim) {
                self.used_bytes -= e.kind.size_bytes();
                self.evictions += 1;
                evicted += 1;
            }
        }
        if size <= self.capacity_bytes {
            self.used_bytes += size;
            self.entries.insert(loop_id, Entry { kind, last_use: self.tick });
        }
        evicted
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `(hits, misses, evictions)` counters.
    pub fn counters(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.evictions)
    }

    /// Bytes currently occupied.
    pub fn used_bytes(&self) -> u32 {
        self.used_bytes
    }

    /// Configured capacity in bytes.
    pub fn capacity_bytes(&self) -> u32 {
        self.capacity_bytes
    }

    /// Snapshot export: every entry as `(loop_id, kind, last_use)`,
    /// sorted by loop ID so identical caches always export identically.
    pub(crate) fn export_entries(&self) -> Vec<(u32, CachedKind, u64)> {
        let mut out: Vec<(u32, CachedKind, u64)> = self
            .entries
            .iter()
            .map(|(&id, e)| (id, e.kind.clone(), e.last_use))
            .collect();
        out.sort_unstable_by_key(|&(id, _, _)| id);
        out
    }

    /// Snapshot export: the LRU tick and `(hits, misses, evictions)`
    /// counters, so a restored cache keeps the same replacement order
    /// and statistics.
    pub(crate) fn export_clock(&self) -> (u64, u64, u64, u64) {
        (self.tick, self.hits, self.misses, self.evictions)
    }

    /// Snapshot restore: rebuilds a cache from exported parts.
    /// `used_bytes` is recomputed from the entries (it is derived state,
    /// so a corrupted value cannot be smuggled in through a snapshot).
    pub(crate) fn from_parts(
        capacity_bytes: u32,
        entries: Vec<(u32, CachedKind, u64)>,
        tick: u64,
        hits: u64,
        misses: u64,
        evictions: u64,
    ) -> DsaCache {
        let mut used_bytes = 0u32;
        let entries: HashMap<u32, Entry> = entries
            .into_iter()
            .map(|(id, kind, last_use)| {
                used_bytes += kind.size_bytes();
                (id, Entry { kind, last_use })
            })
            .collect();
        DsaCache { capacity_bytes, used_bytes, entries, tick, hits, misses, evictions }
    }
}

/// The Verification Cache: holds the data-memory addresses of one
/// analysis iteration. Modelled as a capacity check — if an iteration
/// touches more addresses than fit, the loop cannot be verified.
#[derive(Debug, Clone, Copy)]
pub struct VerificationCache {
    capacity_bytes: u32,
    accesses: u64,
}

impl VerificationCache {
    /// Creates the cache with the given capacity.
    pub fn new(capacity_bytes: u32) -> VerificationCache {
        VerificationCache { capacity_bytes, accesses: 0 }
    }

    /// Whether `n_addresses` 32-bit addresses fit.
    pub fn fits(&self, n_addresses: usize) -> bool {
        (n_addresses as u32) * 4 <= self.capacity_bytes
    }

    /// Records `n` stores into the cache (statistics only).
    pub fn record_accesses(&mut self, n: u64) {
        self.accesses += n;
    }

    /// Total accesses recorded.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Configured capacity in bytes.
    pub fn capacity_bytes(&self) -> u32 {
        self.capacity_bytes
    }

    /// Snapshot restore: a cache with its access counter pre-loaded.
    pub(crate) fn with_accesses(capacity_bytes: u32, accesses: u64) -> VerificationCache {
        VerificationCache { capacity_bytes, accesses }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::LoopTemplate;

    fn vec_entry() -> CachedKind {
        CachedKind::Vectorizable(LoopTemplate::test_dummy())
    }

    #[test]
    fn probe_hit_miss_counters() {
        let mut c = DsaCache::new(1024);
        assert!(c.probe(0x40).is_none());
        c.insert(0x40, CachedKind::NonVectorizable(LoopClass::NonVectorizable));
        assert!(c.probe(0x40).is_some());
        let (h, m, _) = c.counters();
        assert_eq!((h, m), (1, 1));
    }

    #[test]
    fn lru_eviction_under_capacity() {
        // Each non-vec entry is 8 bytes; capacity 24 holds 3.
        let mut c = DsaCache::new(24);
        for id in 0..3 {
            c.insert(id, CachedKind::NonVectorizable(LoopClass::NonVectorizable));
        }
        assert_eq!(c.len(), 3);
        c.probe(0); // 0 recently used; 1 is LRU
        let evicted = c.insert(100, CachedKind::NonVectorizable(LoopClass::NonVectorizable));
        assert_eq!(evicted, 1, "insert reports the displaced entry");
        assert_eq!(c.len(), 3);
        assert!(c.peek(1).is_none(), "LRU entry evicted");
        assert!(c.peek(0).is_some());
        assert_eq!(c.counters().2, 1);
    }

    #[test]
    fn replace_updates_bytes() {
        let mut c = DsaCache::new(1024);
        c.insert(7, CachedKind::NonVectorizable(LoopClass::NonVectorizable));
        let small = c.used_bytes();
        c.insert(7, vec_entry());
        assert!(c.used_bytes() > small);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn vcache_capacity() {
        let v = VerificationCache::new(1024);
        assert!(v.fits(256));
        assert!(!v.fits(257));
    }
}
