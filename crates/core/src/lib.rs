//! The Dynamic SIMD Assembler (DSA) — the paper's contribution.
//!
//! The DSA is a hardware engine that watches the committed instruction
//! stream of an ARMv7-class core, detects vectorizable loops *at
//! runtime*, builds NEON SIMD instructions for them and executes the
//! remaining iterations on the vector engine while the scalar pipeline is
//! stalled. It is implemented here as a [`Dsa`] commit hook for the
//! trace-level simulator in `dsa-cpu`, mirroring the paper's own
//! methodology ("the DSA monitors all O3CPU incoming instructions … we
//! adjust the timing model replacing the scalar vectorizable
//! instructions by vector instructions", dissertation §5).
//!
//! Detection follows the six-stage state machine of the paper:
//!
//! 1. **Loop Detection** — a taken backward branch identifies a loop;
//!    the DSA cache is probed by loop ID (the branch-target PC).
//! 2. **Data Collection** — iteration 2 is profiled: data-memory
//!    addresses go to the Verification Cache, the closing compare gives
//!    the loop range, conditional code / function calls / sentinel
//!    shapes are flagged.
//! 3. **Dependency Analysis** — iteration 3 gives per-stream address
//!    gaps; the Cross-Iteration Dependency Prediction (CIDP, equations
//!    4.1–4.5) decides vectorizability, with partial vectorization for
//!    bounded dependency distances.
//! 4. **Store ID / Execution** — the loop is stored in the DSA cache,
//!    the pipeline is flushed and SIMD operations for the remaining
//!    iterations are injected into the Issue stage.
//! 5. **Mapping** — conditional loops: every executed condition is
//!    mapped into Array Maps and vectorized speculatively on first
//!    execution.
//! 6. **Speculative Execution** — conditional selects and sentinel
//!    speculative ranges are resolved at loop end.
//!
//! # Examples
//!
//! ```
//! use dsa_compiler::{Body, DataType, Expr, KernelBuilder, LoopIr, Trip, Variant};
//! use dsa_core::{Dsa, DsaConfig};
//! use dsa_cpu::{CpuConfig, Simulator};
//!
//! // Build a plain scalar kernel: v[i] = a[i] + b[i], 400 iterations.
//! let mut kb = KernelBuilder::new(Variant::Scalar);
//! let a = kb.alloc("a", DataType::F32, 400);
//! let b = kb.alloc("b", DataType::F32, 400);
//! let v = kb.alloc("v", DataType::F32, 400);
//! kb.emit_loop(LoopIr {
//!     name: "vec_sum".into(),
//!     trip: Trip::Const(400),
//!     elem: DataType::F32,
//!     body: Body::Map { dst: v.at(0), expr: Expr::load(a.at(0)) + Expr::load(b.at(0)) },
//!     ..LoopIr::default()
//! });
//! kb.halt();
//! let kernel = kb.finish();
//!
//! // Run it under the DSA: the loop is detected and vectorized at runtime.
//! let mut dsa = Dsa::new(DsaConfig::default());
//! let mut sim = Simulator::new(kernel.program, CpuConfig::default());
//! let outcome = sim.run_with_hook(10_000_000, &mut dsa).expect("runs");
//! assert!(outcome.halted);
//! assert!(dsa.stats().loops_vectorized > 0);
//! assert!(outcome.timing.covered > 0, "iterations executed on the NEON engine");
//! ```

mod caches;
mod cidp;
mod config;
mod engine;
pub mod faults;
pub mod oracle;
mod plan;
mod profile;
pub mod snapshot;
mod stats;

pub use caches::{CachedKind, DsaCache, VerificationCache};
pub use cidp::{predict, CidpOutcome, Stream};
pub use config::{DsaConfig, FeatureSet, LeftoverPolicy, TestBug};
pub use engine::{Dsa, EngineError, Restored};
pub use faults::{splitmix64, BurstWindow, FaultPlan, FaultSchedule, FaultSite, FaultState};
pub use snapshot::{SessionMeta, Snapshot, SnapshotError};
pub use oracle::{DifferentialOracle, OracleReport, OracleVerdict};
pub use plan::{build_plan, ArmTemplate, LoopTemplate, OpMix, StreamTemplate, TemplateDefect, VectorPlan};
pub use profile::{BodyClass, BodyProfile, IterationProfile, StreamInfo};
pub use stats::{DsaStats, LoopCensus, LoopClass};
