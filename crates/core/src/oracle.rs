//! Differential verification of the DSA's central safety claim.
//!
//! The paper argues the DSA may *speculate* — sentinel trip counts,
//! conditional Array Maps, fused nests — yet never corrupt architectural
//! state: on any misspeculation it flushes and falls back to scalar
//! execution, losing only speedup. The [`DifferentialOracle`] turns that
//! claim into a checkable property: it runs the same program twice, once
//! scalar-only and once with a DSA attached (optionally under an armed
//! [`FaultPlan`](crate::FaultPlan)), and compares the complete final
//! architectural state — scalar and vector register files, flags, and
//! every allocated byte of memory — bit for bit.

use dsa_cpu::{BoundedOutcome, CpuConfig, Machine, NullHook, SimError, Simulator};
use dsa_isa::Program;

use crate::config::DsaConfig;
use crate::engine::{Dsa, EngineError};
use crate::snapshot::Snapshot;
use crate::stats::DsaStats;

/// Outcome of one differential comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OracleVerdict {
    /// The DSA-attached run reproduced the scalar state bit for bit.
    Match,
    /// Architectural state diverged — the DSA corrupted execution. The
    /// digests and the first differing component identify where.
    Mismatch {
        /// Which state component differed first: `"regs"`, `"qregs"`,
        /// `"flags"` or `"memory"`.
        component: &'static str,
    },
    /// The scalar reference itself failed with an executor error; no
    /// verdict about the DSA is possible.
    ScalarFailed(SimError),
    /// The scalar run halted but the DSA-attached run did not — the DSA
    /// prevented forward progress, which is itself a safety violation.
    DsaFailed(SimError),
    /// A harness/fuel outcome, not a divergence: the scalar reference
    /// ran out of step budget (the program may simply not halt, or the
    /// fuel was too small for it), so the comparison never happened.
    /// Generated pathological programs land here instead of producing
    /// false fuzzing failures.
    Inconclusive(SimError),
}

/// Full report from one oracle check.
#[derive(Debug, Clone)]
pub struct OracleReport {
    /// The comparison verdict.
    pub verdict: OracleVerdict,
    /// Digest of the scalar-only final state.
    pub scalar_digest: u64,
    /// Digest of the DSA-attached final state.
    pub dsa_digest: u64,
    /// Cycles of the scalar-only run (0 if it failed).
    pub scalar_cycles: u64,
    /// Cycles of the DSA-attached run (0 if it failed).
    pub dsa_cycles: u64,
    /// Statistics from the DSA-attached run.
    pub stats: DsaStats,
    /// The engine error that poisoned the DSA mid-run, if any. A
    /// poisoned run can still (and must) match the scalar state.
    pub poisoned: Option<EngineError>,
}

impl OracleReport {
    /// Whether the differential property held.
    pub fn holds(&self) -> bool {
        self.verdict == OracleVerdict::Match
    }

    /// Whether the check produced no verdict at all (fuel/infra
    /// outcome on the reference side). Campaign runners count these
    /// separately from both matches and divergences.
    pub fn inconclusive(&self) -> bool {
        matches!(self.verdict, OracleVerdict::Inconclusive(_))
    }
}

impl std::fmt::Display for OracleReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.verdict {
            OracleVerdict::Match => write!(
                f,
                "oracle: match (digest {:#018x}, scalar {} cy, dsa {} cy, \
                 {} degradations)",
                self.scalar_digest, self.scalar_cycles, self.dsa_cycles, self.stats.degradations
            ),
            OracleVerdict::Mismatch { component } => write!(
                f,
                "oracle: MISMATCH in {component} (scalar {:#018x} != dsa {:#018x})",
                self.scalar_digest, self.dsa_digest
            ),
            OracleVerdict::ScalarFailed(e) => write!(f, "oracle: scalar reference failed: {e}"),
            OracleVerdict::DsaFailed(e) => write!(f, "oracle: dsa run failed: {e}"),
            OracleVerdict::Inconclusive(e) => {
                write!(f, "oracle: inconclusive (reference fuel/infra outcome: {e})")
            }
        }
    }
}

/// Runs a program twice — scalar-only and DSA-attached — and compares
/// final architectural state bit for bit.
#[derive(Debug, Clone, Copy)]
pub struct DifferentialOracle {
    /// Step budget for each run (the watchdog).
    pub fuel: u64,
    /// Timing configuration shared by both runs.
    pub cpu: CpuConfig,
}

impl DifferentialOracle {
    /// An oracle with the given step budget and the default CPU model.
    pub fn new(fuel: u64) -> DifferentialOracle {
        DifferentialOracle { fuel, cpu: CpuConfig::default() }
    }

    /// Checks `program` under `config`. `init` seeds identical initial
    /// state (input arrays, registers) into both machines.
    pub fn check<F>(&self, program: &Program, config: DsaConfig, init: F) -> OracleReport
    where
        F: Fn(&mut Machine),
    {
        self.check_with(program, &mut Dsa::new(config), init)
    }

    /// Like [`check`](Self::check), but drives the DSA-attached run
    /// through an existing engine instead of a fresh one, so the
    /// template cache persists across repeated calls with the same
    /// program. Cache-resident fault sites — a corrupted template hit,
    /// a lying sentinel trip count — only have injection opportunities
    /// once a loop has been probed, analyzed and cached on earlier
    /// entrances, which a cold engine never reaches for a
    /// single-entrance kernel. `report.stats` are the engine's
    /// cumulative counters, not this call's increment.
    pub fn check_with<F>(&self, program: &Program, dsa: &mut Dsa, init: F) -> OracleReport
    where
        F: Fn(&mut Machine),
    {
        // Scalar reference.
        let mut scalar = Simulator::new(program.clone(), self.cpu);
        init(scalar.machine_mut());
        let scalar_run = scalar.run_with_hook(self.fuel, &mut NullHook);

        // DSA-attached run on identical initial state.
        let mut vec = Simulator::new(program.clone(), self.cpu);
        init(vec.machine_mut());
        let dsa_run = vec.run_with_hook(self.fuel, dsa);

        let scalar_digest = scalar.machine().arch_digest();
        let dsa_digest = vec.machine().arch_digest();
        let verdict = match (&scalar_run, &dsa_run) {
            (Err(e), _) => Self::scalar_verdict(*e),
            (Ok(_), Err(e)) => OracleVerdict::DsaFailed(*e),
            (Ok(_), Ok(_)) => Self::compare(scalar.machine(), vec.machine()),
        };
        OracleReport {
            verdict,
            scalar_digest,
            dsa_digest,
            scalar_cycles: scalar_run.map(|o| o.cycles).unwrap_or(0),
            dsa_cycles: dsa_run.map(|o| o.cycles).unwrap_or(0),
            stats: dsa.stats(),
            poisoned: dsa.poisoned(),
        }
    }

    /// Crash-consistency check: a DSA-attached run interrupted after
    /// `split` committed instructions, snapshotted (through actual
    /// serialized bytes, exercising the full wire format), restored and
    /// completed, must reach the same final architectural state as both
    /// an uninterrupted DSA run and the scalar reference — bit for bit.
    /// `Mismatch` components are reported against the scalar reference;
    /// a resumed-vs-uninterrupted divergence that somehow still matched
    /// the scalar state would be caught too, since both are compared.
    ///
    /// The resumed engine restarts in Probing mode with a warm cache;
    /// this changes *timing* only, never state — exactly the paper's
    /// safety argument, extended across a process boundary.
    pub fn check_resume<F>(
        &self,
        program: &Program,
        config: DsaConfig,
        init: F,
        split: u64,
    ) -> OracleReport
    where
        F: Fn(&mut Machine),
    {
        // Scalar reference.
        let mut scalar = Simulator::new(program.clone(), self.cpu);
        init(scalar.machine_mut());
        let scalar_run = scalar.run_with_hook(self.fuel, &mut NullHook);

        // Uninterrupted DSA run.
        let mut full = Simulator::new(program.clone(), self.cpu);
        init(full.machine_mut());
        let mut full_dsa = Dsa::new(config);
        let full_run = full.run_with_hook(self.fuel, &mut full_dsa);

        // Interrupted run: pause after `split` commits, serialize a
        // snapshot, drop everything, restore from the bytes, complete.
        let mut first = Simulator::new(program.clone(), self.cpu);
        init(first.machine_mut());
        let mut first_dsa = Dsa::new(config);
        let pause = first.run_bounded(split, &mut first_dsa);
        let resumed_run: Result<dsa_cpu::RunOutcome, SimError> = match pause {
            Err(e) => Err(e),
            Ok(BoundedOutcome::Halted(out)) => {
                // Program finished before the split point; the "resumed"
                // run is just the finished run.
                let digest_holder = first;
                return self.resume_report(
                    scalar, scalar_run, full, full_run, digest_holder, Ok(out), first_dsa,
                );
            }
            Ok(BoundedOutcome::Paused) => {
                let bytes = Snapshot::capture(&first_dsa, first.machine()).to_bytes();
                drop(first_dsa);
                drop(first);
                match Dsa::restore(&bytes, config) {
                    Err(_) => {
                        // A snapshot of our own making must restore; feed
                        // the failure through as a DSA-side failure.
                        Err(SimError::StepBudgetExceeded { pc: 0, steps: 0 })
                    }
                    Ok((mut dsa2, machine2)) => {
                        let mut second =
                            Simulator::with_machine(program.clone(), self.cpu, machine2);
                        let run = second.run_with_hook(self.fuel, &mut dsa2);
                        return self.resume_report(
                            scalar, scalar_run, full, full_run, second, run, dsa2,
                        );
                    }
                }
            }
        };
        // Pause-phase failure (executor error or unrestorable snapshot).
        let scalar_digest = scalar.machine().arch_digest();
        OracleReport {
            verdict: match (&scalar_run, &resumed_run) {
                (Err(e), _) => Self::scalar_verdict(*e),
                (_, Err(e)) => OracleVerdict::DsaFailed(*e),
                _ => OracleVerdict::Mismatch { component: "regs" },
            },
            scalar_digest,
            dsa_digest: 0,
            scalar_cycles: scalar_run.map(|o| o.cycles).unwrap_or(0),
            dsa_cycles: 0,
            stats: DsaStats::default(),
            poisoned: None,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn resume_report(
        &self,
        scalar: Simulator,
        scalar_run: Result<dsa_cpu::RunOutcome, SimError>,
        full: Simulator,
        full_run: Result<dsa_cpu::RunOutcome, SimError>,
        resumed: Simulator,
        resumed_run: Result<dsa_cpu::RunOutcome, SimError>,
        resumed_dsa: Dsa,
    ) -> OracleReport {
        let scalar_digest = scalar.machine().arch_digest();
        let dsa_digest = resumed.machine().arch_digest();
        let verdict = match (&scalar_run, (&full_run, &resumed_run)) {
            (Err(e), _) => Self::scalar_verdict(*e),
            (Ok(_), (Err(e), _)) | (Ok(_), (_, Err(e))) => OracleVerdict::DsaFailed(*e),
            (Ok(_), (Ok(_), Ok(_))) => {
                // Resumed vs scalar, then uninterrupted vs scalar: all
                // three final states must agree bit for bit.
                match Self::compare(scalar.machine(), resumed.machine()) {
                    OracleVerdict::Match => Self::compare(scalar.machine(), full.machine()),
                    diverged => diverged,
                }
            }
        };
        OracleReport {
            verdict,
            scalar_digest,
            dsa_digest,
            scalar_cycles: scalar_run.map(|o| o.cycles).unwrap_or(0),
            dsa_cycles: resumed_run.map(|o| o.cycles).unwrap_or(0),
            stats: resumed_dsa.stats(),
            poisoned: resumed_dsa.poisoned(),
        }
    }

    /// Classifies a failure of the *reference* run: running out of step
    /// budget is a harness outcome ([`OracleVerdict::Inconclusive`] —
    /// the program may be pathological, the fuel too small), while an
    /// executor error is a genuine reference failure.
    fn scalar_verdict(e: SimError) -> OracleVerdict {
        match e {
            SimError::StepBudgetExceeded { .. } => OracleVerdict::Inconclusive(e),
            _ => OracleVerdict::ScalarFailed(e),
        }
    }

    fn compare(scalar: &Machine, dsa: &Machine) -> OracleVerdict {
        if scalar.regs() != dsa.regs() {
            return OracleVerdict::Mismatch { component: "regs" };
        }
        if scalar.qregs() != dsa.qregs() {
            return OracleVerdict::Mismatch { component: "qregs" };
        }
        if scalar.arch_digest() != dsa.arch_digest() {
            // Registers agreed, so the digests diverged over flags or
            // memory contents; memory is by far the larger component.
            return OracleVerdict::Mismatch { component: "memory" };
        }
        OracleVerdict::Match
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsa_compiler::{Body, DataType, Expr, KernelBuilder, LoopIr, Trip, Variant};

    fn vec_add_kernel() -> dsa_compiler::Kernel {
        let mut kb = KernelBuilder::new(Variant::Scalar);
        let a = kb.alloc("a", DataType::F32, 256);
        let b = kb.alloc("b", DataType::F32, 256);
        let v = kb.alloc("v", DataType::F32, 256);
        kb.emit_loop(LoopIr {
            name: "vec_sum".into(),
            trip: Trip::Const(256),
            elem: DataType::F32,
            body: Body::Map { dst: v.at(0), expr: Expr::load(a.at(0)) + Expr::load(b.at(0)) },
            ..LoopIr::default()
        });
        kb.halt();
        kb.finish()
    }

    #[test]
    fn oracle_matches_on_a_vectorized_loop() {
        let kernel = vec_add_kernel();
        let oracle = DifferentialOracle::new(10_000_000);
        let report = oracle.check(&kernel.program, DsaConfig::full(), |_| {});
        assert!(report.holds(), "{report}");
        assert!(report.stats.loops_vectorized > 0, "DSA actually engaged");
        assert!(report.poisoned.is_none());
    }

    #[test]
    fn resume_from_mid_run_snapshot_is_bit_identical() {
        let kernel = vec_add_kernel();
        let oracle = DifferentialOracle::new(10_000_000);
        // Split points from "before the loop starts" to "deep inside
        // vectorized execution".
        for split in [1, 50, 500, 5_000] {
            let report =
                oracle.check_resume(&kernel.program, DsaConfig::full(), |_| {}, split);
            assert!(report.holds(), "split {split}: {report}");
        }
    }

    #[test]
    fn resume_after_natural_halt_still_matches() {
        let kernel = vec_add_kernel();
        let oracle = DifferentialOracle::new(10_000_000);
        // Split beyond program length: the bounded run halts naturally.
        let report =
            oracle.check_resume(&kernel.program, DsaConfig::full(), |_| {}, 10_000_000);
        assert!(report.holds(), "{report}");
    }

    #[test]
    fn planted_restore_bug_is_caught_as_divergence() {
        // The TestBug hook models a silent logic error in the DSA's
        // snapshot-restore path: the resumed run "succeeds" but one bit
        // of the restored memory image is wrong. The kill→resume
        // differential check must flag it — this is exactly the class
        // of bug the forge campaigns exist to find.
        use crate::config::TestBug;
        let kernel = vec_add_kernel();
        let oracle = DifferentialOracle::new(10_000_000);
        let (a, b) = (kernel.layout.bufs()[0].base, kernel.layout.bufs()[1].base);
        // Nonzero inputs: a flipped bit in all-zero data still diverges,
        // but realistic data keeps the digests honest.
        let init = move |m: &mut Machine| {
            for i in 0..256u32 {
                m.mem.write_f32(a + 4 * i, i as f32);
                m.mem.write_f32(b + 4 * i, 2.0 * i as f32);
            }
        };
        let clean = oracle.check_resume(&kernel.program, DsaConfig::full(), init, 500);
        assert!(clean.holds(), "{clean}");
        let config = DsaConfig::full().with_test_bug(TestBug::CorruptRestore);
        // The plain (no-snapshot) differential check cannot see a
        // restore bug: vectorization is timing substitution, so a
        // normal run never rebuilds state through the DSA layer.
        let plain = oracle.check(&kernel.program, config, init);
        assert!(plain.holds(), "{plain}");
        let report = oracle.check_resume(&kernel.program, config, init, 500);
        assert!(
            matches!(report.verdict, OracleVerdict::Mismatch { .. }),
            "planted bug must diverge: {report}"
        );
    }

    #[test]
    fn oracle_reports_a_non_halting_reference_as_inconclusive() {
        // A reference that runs out of fuel yields no verdict at all:
        // the outcome is Inconclusive, not a divergence and not a
        // scalar *failure* — generated pathological programs must not
        // read as fuzzing hits.
        let kernel = vec_add_kernel();
        let oracle = DifferentialOracle::new(10);
        let report = oracle.check(&kernel.program, DsaConfig::full(), |_| {});
        assert!(
            matches!(report.verdict, OracleVerdict::Inconclusive(SimError::StepBudgetExceeded { .. })),
            "{report}"
        );
        assert!(report.inconclusive());
        assert!(!report.holds());
        assert!(report.to_string().contains("inconclusive"));
        // The resume variant classifies a starved reference the same way.
        let resume = oracle.check_resume(&kernel.program, DsaConfig::full(), |_| {}, 5);
        assert!(resume.inconclusive(), "{resume}");
    }
}
