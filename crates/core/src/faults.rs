//! Deterministic fault injection for the DSA's internal structures.
//!
//! The paper's safety argument is that the DSA only ever *speculates*
//! about timing — architectural state is always produced by the scalar
//! core, so a wrong template, a lying Array Map or a stale speculative
//! range can cost cycles but never correctness. This module makes that
//! argument testable: a [`FaultPlan`] (carried in
//! [`DsaConfig`](crate::DsaConfig)) arms a set of named [`FaultSite`]s,
//! and the engine corrupts its own bookkeeping at those sites in a
//! seed-deterministic schedule. The engine's consistency checks must
//! then *detect* each corruption, roll back, and degrade to scalar
//! execution — which the differential oracle
//! ([`crate::oracle`]) verifies produces bit-identical results.
//!
//! Everything is derived from a single `u64` seed via splitmix64, so a
//! failing schedule is reproducible from its seed alone.

/// A named point inside the engine where a fault can be injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// Corrupt a cached [`LoopTemplate`](crate::LoopTemplate) as it is
    /// read out of the DSA cache on a probe hit (models a bit flip in
    /// the cache array).
    CorruptTemplate,
    /// Store a wildly inflated speculative trip count when a sentinel
    /// loop exits (models a lying trip predictor).
    LieSentinelTrip,
    /// Flip the Array-Map condition path observed for one conditional
    /// iteration (models a stuck Array-Map bit).
    FlipArrayMapCondition,
    /// Drop one Verification-Cache entry from a recorded iteration
    /// (models a lost verification-cache line).
    DropVcacheEntry,
    /// Skip the rollback flush (`end_coverage`) when vector execution
    /// ends, leaving coverage suppression stuck on.
    SkipRollbackFlush,
}

impl FaultSite {
    /// Every site, in a stable order (bit `i` of
    /// [`FaultPlan::armed_mask`] corresponds to `ALL[i]`).
    pub const ALL: [FaultSite; 5] = [
        FaultSite::CorruptTemplate,
        FaultSite::LieSentinelTrip,
        FaultSite::FlipArrayMapCondition,
        FaultSite::DropVcacheEntry,
        FaultSite::SkipRollbackFlush,
    ];

    /// Stable human-readable name (used in reports and CI output).
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::CorruptTemplate => "corrupt-template",
            FaultSite::LieSentinelTrip => "lie-sentinel-trip",
            FaultSite::FlipArrayMapCondition => "flip-array-map-condition",
            FaultSite::DropVcacheEntry => "drop-vcache-entry",
            FaultSite::SkipRollbackFlush => "skip-rollback-flush",
        }
    }

    fn index(self) -> usize {
        match self {
            FaultSite::CorruptTemplate => 0,
            FaultSite::LieSentinelTrip => 1,
            FaultSite::FlipArrayMapCondition => 2,
            FaultSite::DropVcacheEntry => 3,
            FaultSite::SkipRollbackFlush => 4,
        }
    }
}

/// A deterministic fault-injection schedule: a seed plus a bitmask of
/// armed sites. `Copy` and field-for-field comparable so it can live
/// inside [`DsaConfig`](crate::DsaConfig) without breaking memoization
/// keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FaultPlan {
    /// Seed for the per-site firing schedule.
    pub seed: u64,
    /// Bit `i` arms `FaultSite::ALL[i]`.
    pub armed_mask: u8,
}

impl FaultPlan {
    /// Arms every site under `seed`.
    pub fn all(seed: u64) -> FaultPlan {
        FaultPlan { seed, armed_mask: (1 << FaultSite::ALL.len()) - 1 }
    }

    /// Arms a single site under `seed`.
    pub fn only(seed: u64, site: FaultSite) -> FaultPlan {
        FaultPlan { seed, armed_mask: 1 << site.index() }
    }

    /// Whether `site` is armed.
    pub fn armed(&self, site: FaultSite) -> bool {
        self.armed_mask & (1 << site.index()) != 0
    }

    /// The armed sites, in stable order.
    pub fn sites(&self) -> impl Iterator<Item = FaultSite> + '_ {
        FaultSite::ALL.into_iter().filter(|s| self.armed(*s))
    }
}

/// splitmix64 — the standard 64-bit mixer; deterministic,
/// dependency-free. Public so the chaos harness in `dsa-bench` derives
/// its randomized schedules from the same generator the engine uses.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One randomized firing window: site `site` fires on opportunity
/// indices `start .. start + len` (a *burst*). Opportunity indices count
/// per-site, exactly like [`FaultState::fire`]'s modular schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BurstWindow {
    /// Site the burst applies to.
    pub site: FaultSite,
    /// First opportunity index (per-site) that fires.
    pub start: u32,
    /// Number of consecutive opportunities that fire (≥ 1).
    pub len: u32,
}

impl BurstWindow {
    /// Whether per-site opportunity `n` falls inside the burst.
    pub fn contains(&self, n: u32) -> bool {
        n >= self.start && n - self.start < self.len
    }
}

/// A generalized, seed-driven fault schedule: instead of the five fixed
/// modular patterns of [`FaultPlan`], an arbitrary set of
/// (site × trigger-opportunity × burst-length) windows. Produced by the
/// chaos harness ([`FaultSchedule::generate`]) and shrunk window-by-
/// window when a campaign fails, so a minimal reproducer is just a
/// shorter window list with the same seed.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct FaultSchedule {
    /// Seed the schedule was generated from (kept for `pick` variants
    /// and for provenance in reproducer artifacts).
    pub seed: u64,
    /// Firing windows; order is irrelevant to semantics but preserved
    /// for reproducer stability.
    pub windows: Vec<BurstWindow>,
}

impl FaultSchedule {
    /// Generates a randomized schedule of `n_windows` bursts from
    /// `seed`: uniformly chosen sites, trigger opportunities in
    /// `0..max_start`, burst lengths in `1..=4`. Deterministic — the
    /// same `(seed, n_windows, max_start)` always yields the same
    /// schedule.
    pub fn generate(seed: u64, n_windows: usize, max_start: u32) -> FaultSchedule {
        let mut s = seed ^ 0xc4a5_a511_7e3d_0b7d;
        let windows = (0..n_windows)
            .map(|_| {
                let r = splitmix64(&mut s);
                let site = FaultSite::ALL[(r % FaultSite::ALL.len() as u64) as usize];
                let start = ((r >> 8) % max_start.max(1) as u64) as u32;
                let len = 1 + ((r >> 40) % 4) as u32;
                BurstWindow { site, start, len }
            })
            .collect();
        FaultSchedule { seed, windows }
    }

    /// Bitmask of sites that appear in at least one window (the
    /// schedule-mode equivalent of [`FaultPlan::armed_mask`]).
    pub fn armed_mask(&self) -> u8 {
        self.windows.iter().fold(0, |m, w| m | 1 << w.site.index())
    }

    /// Whether per-site opportunity `n` at `site` falls in any window.
    pub fn fires(&self, site: FaultSite, n: u32) -> bool {
        self.windows.iter().any(|w| w.site == site && w.contains(n))
    }
}

/// Runtime firing state derived from a [`FaultPlan`]. Each armed site
/// fires on a seed-chosen subset of its opportunities: site `s` fires at
/// opportunity `n` iff `n % period[s] == phase[s]`, with `period` in
/// `1..=3`. Every armed site therefore fires within its first three
/// opportunities, and keeps firing sparsely after that — enough to
/// exercise repeated detection without drowning the run.
#[derive(Debug, Clone)]
pub struct FaultState {
    plan: FaultPlan,
    period: [u32; 5],
    phase: [u32; 5],
    seen: [u32; 5],
    fired: [u32; 5],
    /// When present, firing decisions come from the window list instead
    /// of the modular `period`/`phase` schedule.
    schedule: Option<FaultSchedule>,
}

impl FaultState {
    /// Derives the firing schedule for `plan`.
    pub fn new(plan: FaultPlan) -> FaultState {
        let mut period = [1u32; 5];
        let mut phase = [0u32; 5];
        for (i, site) in FaultSite::ALL.iter().enumerate() {
            let mut s = plan.seed ^ (0xf4_417 + site.index() as u64 * 0x9e37_79b9);
            let r = splitmix64(&mut s);
            period[i] = 1 + (r % 3) as u32;
            phase[i] = ((r >> 16) % period[i] as u64) as u32;
        }
        FaultState { plan, period, phase, seen: [0; 5], fired: [0; 5], schedule: None }
    }

    /// Derives runtime state from a generalized window schedule. Sites
    /// with at least one window are armed; firing decisions come from
    /// window containment instead of the modular pattern.
    pub fn from_schedule(schedule: FaultSchedule) -> FaultState {
        let plan = FaultPlan { seed: schedule.seed, armed_mask: schedule.armed_mask() };
        FaultState {
            plan,
            period: [1; 5],
            phase: [0; 5],
            seen: [0; 5],
            fired: [0; 5],
            schedule: Some(schedule),
        }
    }

    /// The plan this state was derived from (for schedule mode, a plan
    /// with the union of scheduled sites armed).
    pub fn plan(&self) -> FaultPlan {
        self.plan
    }

    /// The window schedule, when running in schedule mode.
    pub fn schedule(&self) -> Option<&FaultSchedule> {
        self.schedule.as_ref()
    }

    /// Registers one opportunity at `site` and reports whether the fault
    /// fires there. Unarmed sites never fire (and are not counted).
    pub fn fire(&mut self, site: FaultSite) -> bool {
        if !self.plan.armed(site) {
            return false;
        }
        let i = site.index();
        let n = self.seen[i];
        self.seen[i] += 1;
        let fires = match &self.schedule {
            Some(sched) => sched.fires(site, n),
            None => n % self.period[i] == self.phase[i],
        };
        if fires {
            self.fired[i] += 1;
        }
        fires
    }

    /// Seed-deterministic choice in `0..n` for the current firing at
    /// `site` (used to pick among corruption variants).
    pub fn pick(&self, site: FaultSite, n: u32) -> u32 {
        let i = site.index();
        let mut s = self.plan.seed ^ ((self.seen[i] as u64) << 8) ^ site.index() as u64;
        (splitmix64(&mut s) % n.max(1) as u64) as u32
    }

    /// Total faults fired so far, across all sites.
    pub fn total_fired(&self) -> u64 {
        self.fired.iter().map(|&n| n as u64).sum()
    }

    /// Faults fired at `site` so far.
    pub fn fired_at(&self, site: FaultSite) -> u32 {
        self.fired[site.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_arm_and_iterate() {
        let all = FaultPlan::all(42);
        assert!(FaultSite::ALL.iter().all(|&s| all.armed(s)));
        assert_eq!(all.sites().count(), 5);
        let one = FaultPlan::only(42, FaultSite::DropVcacheEntry);
        assert!(one.armed(FaultSite::DropVcacheEntry));
        assert!(!one.armed(FaultSite::CorruptTemplate));
        assert_eq!(one.sites().count(), 1);
    }

    #[test]
    fn schedule_is_deterministic_and_fires_early() {
        for seed in 0..64u64 {
            let mut a = FaultState::new(FaultPlan::all(seed));
            let mut b = FaultState::new(FaultPlan::all(seed));
            for site in FaultSite::ALL {
                let fa: Vec<bool> = (0..10).map(|_| a.fire(site)).collect();
                let fb: Vec<bool> = (0..10).map(|_| b.fire(site)).collect();
                assert_eq!(fa, fb, "seed {seed} site {site:?}");
                assert!(
                    fa[..3].iter().any(|&f| f),
                    "site must fire within 3 opportunities (seed {seed}, {site:?})"
                );
            }
            assert!(a.total_fired() > 0);
        }
    }

    #[test]
    fn unarmed_sites_never_fire() {
        let mut st = FaultState::new(FaultPlan::only(7, FaultSite::LieSentinelTrip));
        for _ in 0..20 {
            assert!(!st.fire(FaultSite::CorruptTemplate));
        }
        assert_eq!(st.fired_at(FaultSite::CorruptTemplate), 0);
    }

    #[test]
    fn generated_schedules_are_deterministic() {
        let a = FaultSchedule::generate(99, 8, 50);
        let b = FaultSchedule::generate(99, 8, 50);
        assert_eq!(a, b);
        assert_eq!(a.windows.len(), 8);
        assert!(a.windows.iter().all(|w| w.start < 50 && (1..=4).contains(&w.len)));
        assert_ne!(a, FaultSchedule::generate(100, 8, 50));
    }

    #[test]
    fn schedule_windows_gate_firing() {
        let sched = FaultSchedule {
            seed: 1,
            windows: vec![BurstWindow { site: FaultSite::CorruptTemplate, start: 2, len: 3 }],
        };
        let mut st = FaultState::from_schedule(sched);
        // Opportunities 0,1 miss; 2,3,4 fire; 5+ miss.
        let fired: Vec<bool> = (0..7).map(|_| st.fire(FaultSite::CorruptTemplate)).collect();
        assert_eq!(fired, [false, false, true, true, true, false, false]);
        assert_eq!(st.fired_at(FaultSite::CorruptTemplate), 3);
        // Unscheduled sites are unarmed.
        assert!(!st.fire(FaultSite::LieSentinelTrip));
        assert_eq!(st.fired_at(FaultSite::LieSentinelTrip), 0);
    }

    #[test]
    fn schedule_armed_mask_is_union_of_window_sites() {
        let sched = FaultSchedule {
            seed: 0,
            windows: vec![
                BurstWindow { site: FaultSite::DropVcacheEntry, start: 0, len: 1 },
                BurstWindow { site: FaultSite::SkipRollbackFlush, start: 5, len: 2 },
            ],
        };
        let st = FaultState::from_schedule(sched);
        assert!(st.plan().armed(FaultSite::DropVcacheEntry));
        assert!(st.plan().armed(FaultSite::SkipRollbackFlush));
        assert!(!st.plan().armed(FaultSite::CorruptTemplate));
    }

    #[test]
    fn pick_is_bounded() {
        let st = FaultState::new(FaultPlan::all(3));
        for n in 1..8 {
            assert!(st.pick(FaultSite::CorruptTemplate, n) < n);
        }
    }
}
