//! DSA configuration: feature set, structure sizes, stage latencies.

use crate::faults::FaultPlan;

/// Which loop classes the DSA can vectorize.
///
/// The three presets reproduce the three publications:
/// [`FeatureSet::original`] (SBCCI 2018), [`FeatureSet::extended`]
/// (SBESC 2018, adds conditional and dynamic-range loops) and
/// [`FeatureSet::full`] (DATE 2019, adds sentinel loops and partial
/// vectorization).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FeatureSet {
    /// Count loops (fixed trip).
    pub count_loops: bool,
    /// Loops whose body calls a function.
    pub function_loops: bool,
    /// Reuse of cached verdicts across loop-nest re-entries.
    pub loop_nests: bool,
    /// Loops with conditional code (speculative Array-Map execution).
    pub conditional_loops: bool,
    /// Dynamic range loops (trip computed at runtime before the loop).
    pub dynamic_range_loops: bool,
    /// Sentinel loops (stop condition computed inside the loop).
    pub sentinel_loops: bool,
    /// Partial vectorization of loops with cross-iteration dependencies.
    pub partial_vectorization: bool,
}

impl FeatureSet {
    /// The original DSA of Article 1 (SBCCI 2018).
    pub fn original() -> FeatureSet {
        FeatureSet {
            count_loops: true,
            function_loops: true,
            loop_nests: true,
            conditional_loops: false,
            dynamic_range_loops: false,
            sentinel_loops: false,
            partial_vectorization: false,
        }
    }

    /// The extended DSA of Article 2 (SBESC 2018).
    pub fn extended() -> FeatureSet {
        FeatureSet {
            conditional_loops: true,
            dynamic_range_loops: true,
            ..FeatureSet::original()
        }
    }

    /// The full DSA of Article 3 (DATE 2019).
    pub fn full() -> FeatureSet {
        FeatureSet {
            sentinel_loops: true,
            partial_vectorization: true,
            ..FeatureSet::extended()
        }
    }
}

impl Default for FeatureSet {
    fn default() -> FeatureSet {
        FeatureSet::full()
    }
}

/// A deliberately planted detector bug, armed only by the fuzzing
/// harness to prove its campaigns can catch real divergences.
///
/// Unlike [`FaultPlan`](crate::FaultPlan) faults — which the engine is
/// *supposed* to detect and degrade from — a test bug models a logic
/// error in the DSA layer itself: the run completes "successfully" but
/// the architectural state is silently wrong. `None` in every normal
/// configuration; only `dsa-forge` campaigns and their regression
/// replays ever set it.
///
/// The bug is planted in the snapshot-restore path rather than the
/// vectorization path because the simulator, like the paper, models
/// vectorization as *timing substitution*: covered iterations still
/// execute architecturally on the scalar core, so the detector cannot
/// corrupt state during a normal run by construction. Snapshot restore
/// is the one pathway where the DSA layer rebuilds architectural state
/// from its own serialization — exactly where a silent logic error
/// would live, and exactly what the campaign's kill→resume phase
/// exists to check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TestBug {
    /// Flip the low bit of the first byte of the lowest allocated page
    /// when restoring a machine from a snapshot. One bit of one input
    /// element, silently wrong after every resume — invisible to the
    /// engine's own checks, caught only by differential comparison.
    CorruptRestore,
}

impl TestBug {
    /// Stable artifact name.
    pub fn name(self) -> &'static str {
        match self {
            TestBug::CorruptRestore => "corrupt-restore",
        }
    }

    /// Parses a stable artifact name.
    pub fn by_name(name: &str) -> Option<TestBug> {
        match name {
            "corrupt-restore" => Some(TestBug::CorruptRestore),
            _ => None,
        }
    }
}

/// How leftover iterations (trip not a lane multiple) are executed
/// (dissertation §4.8).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeftoverPolicy {
    /// Pick per situation: Overlapping when the trip fills at least one
    /// full vector and the operation tolerates recomputation, otherwise
    /// Single Elements.
    Auto,
    /// Load, process and store each remaining element individually.
    SingleElements,
    /// Re-process a few trailing elements so the last vector is full.
    Overlapping,
    /// Pad the array to the next lane multiple and run one extra vector.
    LargerArrays,
}

/// Full DSA configuration. Defaults reproduce the paper's setup
/// (Table 4): 8 KB DSA cache, 1 KB Verification Cache, four 128-bit
/// Array Maps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DsaConfig {
    /// Enabled loop classes.
    pub features: FeatureSet,
    /// DSA cache capacity in bytes.
    pub dsa_cache_bytes: u32,
    /// Verification Cache capacity in bytes.
    pub vcache_bytes: u32,
    /// Number of 128-bit Array Maps for conditional speculation.
    pub array_maps: u32,
    /// Spare NEON registers usable when Array Maps run out.
    pub spare_vector_regs: u32,
    /// Core cycles to flush the pipeline before NEON execution starts.
    pub flush_latency: u32,
    /// Core cycles to restart the frontend after NEON execution.
    pub resync_latency: u32,
    /// DSA-side latency of one DSA-cache access (parallel to the core).
    pub dsa_cache_latency: u32,
    /// DSA-side latency of one Verification-Cache access.
    pub vcache_latency: u32,
    /// DSA-side latency of one CIDP evaluation (per stream pair).
    pub cidp_latency: u32,
    /// DSA-side latency of one Array-Map access.
    pub array_map_latency: u32,
    /// DSA-side latency of the speculative select at each chunk end.
    pub select_latency: u32,
    /// DSA-side latency of re-verifying dependencies per partial chunk.
    pub partial_chunk_latency: u32,
    /// Iteration budget for mapping a conditional loop before giving up.
    pub conditional_analysis_limit: u32,
    /// Minimum remaining iterations worth flushing the pipeline for; a
    /// smaller remainder finishes scalar (vectorization would cost more
    /// than it saves).
    pub min_profitable_iterations: u32,
    /// Leftover strategy.
    pub leftover: LeftoverPolicy,
    /// Opt-in telemetry: when set, the harness attaches trace sinks
    /// (metrics registry, and — with `DSA_TRACE=<path>` — the JSONL and
    /// Perfetto exporters) to the run. The engine itself only emits
    /// through an attached sink, so `false` keeps the zero-overhead
    /// disabled path.
    pub trace: bool,
    /// Optional deterministic fault-injection schedule (robustness
    /// testing only; `None` in every normal configuration).
    pub faults: Option<FaultPlan>,
    /// Optional planted detector bug (fuzz-harness self-test only;
    /// `None` in every normal configuration). See [`TestBug`].
    pub test_bug: Option<TestBug>,
}

impl Default for DsaConfig {
    fn default() -> DsaConfig {
        DsaConfig {
            features: FeatureSet::full(),
            dsa_cache_bytes: 8 * 1024,
            vcache_bytes: 1024,
            array_maps: 4,
            spare_vector_regs: 4,
            flush_latency: 10,
            resync_latency: 4,
            dsa_cache_latency: 1,
            vcache_latency: 1,
            cidp_latency: 2,
            array_map_latency: 1,
            select_latency: 2,
            partial_chunk_latency: 3,
            conditional_analysis_limit: 64,
            min_profitable_iterations: 8,
            leftover: LeftoverPolicy::Auto,
            trace: false,
            faults: None,
            test_bug: None,
        }
    }
}

impl DsaConfig {
    /// Configuration for the original DSA (Article 1).
    pub fn original() -> DsaConfig {
        DsaConfig { features: FeatureSet::original(), ..DsaConfig::default() }
    }

    /// Configuration for the extended DSA (Article 2).
    pub fn extended() -> DsaConfig {
        DsaConfig { features: FeatureSet::extended(), ..DsaConfig::default() }
    }

    /// Configuration for the full DSA (Article 3 / DATE 2019).
    pub fn full() -> DsaConfig {
        DsaConfig::default()
    }

    /// The same configuration with a fault-injection schedule armed.
    pub fn with_faults(self, plan: FaultPlan) -> DsaConfig {
        DsaConfig { faults: Some(plan), ..self }
    }

    /// The same configuration with telemetry opted in.
    pub fn with_trace(self) -> DsaConfig {
        DsaConfig { trace: true, ..self }
    }

    /// The same configuration with a planted detector bug armed
    /// (fuzz-harness self-test only).
    pub fn with_test_bug(self, bug: TestBug) -> DsaConfig {
        DsaConfig { test_bug: Some(bug), ..self }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_ordered_by_coverage() {
        let o = FeatureSet::original();
        let e = FeatureSet::extended();
        let f = FeatureSet::full();
        assert!(!o.conditional_loops && e.conditional_loops && f.conditional_loops);
        assert!(!o.sentinel_loops && !e.sentinel_loops && f.sentinel_loops);
        assert!(!e.partial_vectorization && f.partial_vectorization);
        assert!(o.count_loops && o.function_loops && o.loop_nests);
    }

    #[test]
    fn test_bug_is_off_by_default_and_names_round_trip() {
        assert_eq!(DsaConfig::default().test_bug, None);
        assert_eq!(DsaConfig::full().with_faults(FaultPlan::all(1)).test_bug, None);
        let armed = DsaConfig::full().with_test_bug(TestBug::CorruptRestore);
        assert_eq!(armed.test_bug, Some(TestBug::CorruptRestore));
        assert_eq!(TestBug::by_name(TestBug::CorruptRestore.name()), Some(TestBug::CorruptRestore));
        assert_eq!(TestBug::by_name("no-such-bug"), None);
    }

    #[test]
    fn default_matches_paper_table() {
        let c = DsaConfig::default();
        assert_eq!(c.dsa_cache_bytes, 8 * 1024);
        assert_eq!(c.vcache_bytes, 1024);
        assert_eq!(c.array_maps, 4);
    }
}
