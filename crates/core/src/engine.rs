//! The DSA engine: a [`CommitHook`] implementing the six-stage detection
//! state machine over the committed instruction stream.

use std::collections::{BTreeMap, HashMap, HashSet};

use dsa_cpu::{CommitHook, Machine, SimControl, TraceEvent};
use dsa_isa::{Cond, Instr};
use dsa_trace::{CacheKind, CacheOutcome, Event, SpecKind, Stage, TraceSink, Tracer};

use crate::caches::{CachedKind, DsaCache, VerificationCache};
use crate::cidp::{self, CidpOutcome};
use crate::config::DsaConfig;
use crate::faults::{FaultSchedule, FaultSite, FaultState};
use crate::snapshot::{EngineState, Snapshot, SnapshotError};
use crate::plan::{self, ArmTemplate, LoopTemplate, OpMix, StreamTemplate};
use crate::profile::{CmpObs, IterationProfile, IterationRecorder};
use crate::stats::{DsaStats, LoopCensus, LoopClass};

/// Upper bound on a stored sentinel speculative range. Real ranges track
/// observed trip counts; anything beyond this is treated as corrupted
/// state (e.g. a lying trip predictor) and degrades the loop to scalar.
const MAX_SPEC_RANGE: u32 = 1 << 26;

/// An impossible state-machine transition inside the engine. These were
/// `unreachable!()` panics; they are now typed values that *poison* the
/// DSA — it ends coverage, detaches itself and lets the run complete
/// scalar-only, losing speedup but never correctness or the process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineError {
    /// The mode the handler required.
    pub expected: &'static str,
    /// The operation that found itself in the wrong mode.
    pub during: &'static str,
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "DSA state-machine violation: {} requires mode {}", self.during, self.expected)
    }
}

impl std::error::Error for EngineError {}

/// Destructures the current mode or returns the typed invariant
/// violation that used to be an `unreachable!()`.
macro_rules! expect_mode {
    ($dsa:expr, $variant:ident, $during:expr) => {
        match &mut $dsa.mode {
            Mode::$variant(inner) => inner,
            _ => {
                return Err(EngineError { expected: stringify!($variant), during: $during })
            }
        }
    };
}

/// The Dynamic SIMD Assembler. Attach to a
/// [`Simulator`](dsa_cpu::Simulator) via
/// [`run_with_hook`](dsa_cpu::Simulator::run_with_hook); see the
/// [crate-level example](crate).
#[derive(Debug)]
pub struct Dsa {
    config: DsaConfig,
    cache: DsaCache,
    vcache: VerificationCache,
    stats: DsaStats,
    census: HashMap<u32, LoopClass>,
    mode: Mode,
    faults: Option<FaultState>,
    error: Option<EngineError>,
    /// Telemetry: [`Tracer::Off`] unless a sink was attached, in which
    /// case every lifecycle / stage / cache / fault observation flows
    /// out as a [`dsa_trace::Event`]. All emission sites sit on loop
    /// boundaries and stage transitions — never the per-commit path —
    /// and the disabled path is a single discriminant test.
    tracer: Tracer,
}

/// Outcome of [`Dsa::restore_or_cold`]: either the warm state came back,
/// or the image was rejected and a cold engine stands in.
// Constructed once per restore attempt; not worth boxing the machine.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum Restored {
    /// The image validated; engine and machine resume where the
    /// snapshot was taken.
    Warm {
        /// The restored engine (warm caches, Probing mode).
        dsa: Dsa,
        /// The restored architectural state.
        machine: Machine,
    },
    /// The image was rejected; a cold engine is supplied instead (the
    /// caller must also rebuild machine state from scratch).
    Cold {
        /// A fresh engine under the requested configuration.
        dsa: Dsa,
        /// Why the image was rejected.
        error: SnapshotError,
    },
}

#[derive(Debug)]
enum Mode {
    Probing,
    Analyzing(Box<Analysis>),
    Executing(Box<Execution>),
    /// Terminal: an [`EngineError`] occurred; the DSA has detached and
    /// ignores every further commit (the run completes scalar-only).
    Poisoned,
}

#[derive(Debug)]
struct Analysis {
    id: u32,
    end_pc: u32,
    iter: u32,
    rec: IterationRecorder,
    /// Iteration-2 profile (Data Collection output).
    collected: Option<IterationProfile>,
    /// Cache-hit fast path: the stored template.
    hit: Option<LoopTemplate>,
    /// Conditional-loop mapping state.
    cond: Option<CondAnalysis>,
    /// Nest-fusion observation state (§4.6.3).
    nest: Option<NestAnalysis>,
    call_depth: u32,
}

/// Observing an outer loop whose body is a cached-vectorizable inner
/// loop: if everything outside the inner loop is pure overhead and the
/// inner streams advance contiguously across outer iterations, the nest
/// fuses into a single loop of `outer × inner` iterations.
#[derive(Debug)]
struct NestAnalysis {
    inner_id: u32,
    inner_end: u32,
    inner_template: LoopTemplate,
    inner_trip: u32,
}

/// First observation of an arm, its iteration, and (when seen again)
/// the verifying second observation.
type ArmObservation = (IterationProfile, u32, Option<(IterationProfile, u32)>);

#[derive(Debug)]
struct CondAnalysis {
    /// path hash → observations of that arm (ordered map so template
    /// arm order — and therefore injected-op order — is deterministic).
    arms: BTreeMap<u64, ArmObservation>,
    pcs_seen: HashSet<u32>,
    verified: BTreeMap<u64, ArmTemplate>,
}

#[derive(Debug)]
struct Execution {
    id: u32,
    lo: u32,
    hi: u32,
    callee: Option<(u32, u32)>,
    kind: ExecKind,
    iters: u32,
    call_depth: u32,
}

// The enum lives inside the boxed `Execution`; variant size skew is fine.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
enum ExecKind {
    /// Full coverage until the loop exits. The first `peel` iterations
    /// run scalar so the vectorized stream starts 16-byte aligned (the
    /// DSA knows the real addresses, unlike a static compiler).
    Plain { peel: u32 },
    /// Sentinel: cover the body (not the stop check) in speculative
    /// blocks of `block` iterations; while the loop keeps running, the
    /// next block is speculated too (§4.6.5's continued partial
    /// vectorization).
    Sentinel {
        template: LoopTemplate,
        /// Iterations speculated so far (grows block by block).
        budget: u32,
        /// Size of one speculative block.
        block: u32,
        check_hi: u32,
        /// Stream bases for the *next* block.
        bases: Vec<(StreamTemplate, u32)>,
        injected_elems: u32,
    },
    /// Conditional: speculative execution in vector-width windows — each
    /// condition accessed within a window is vectorized over it and the
    /// Array Maps select the surviving lanes (Figure 22 of the paper).
    Conditional {
        template: LoopTemplate,
        /// Arms seen in the current window: path → stream bases at the
        /// window start (ordered for deterministic injection).
        window_arms: BTreeMap<u64, Vec<(StreamTemplate, u32)>>,
        /// Iterations covered in the current window.
        window_fill: u32,
        rec: IterationRecorder,
        injected_elems: u32,
    },
}

impl Dsa {
    /// Creates a DSA with the given configuration.
    pub fn new(config: DsaConfig) -> Dsa {
        Dsa {
            config,
            cache: DsaCache::new(config.dsa_cache_bytes),
            vcache: VerificationCache::new(config.vcache_bytes),
            stats: DsaStats::default(),
            census: HashMap::new(),
            mode: Mode::Probing,
            faults: config.faults.map(FaultState::new),
            error: None,
            tracer: Tracer::Off,
        }
    }

    /// Exports the engine's persistent state (caches, statistics,
    /// census) for snapshot serialization. Transient detection state
    /// (the current [`Mode`]) is intentionally excluded: the engine
    /// restarts in Probing after a restore, losing at most one
    /// in-flight analysis and never architectural state.
    pub(crate) fn engine_state(&self) -> EngineState {
        let (tick, hits, misses, evictions) = self.cache.export_clock();
        let mut census: Vec<(u32, LoopClass)> =
            self.census.iter().map(|(&id, &class)| (id, class)).collect();
        census.sort_unstable_by_key(|&(id, _)| id);
        EngineState {
            cache_capacity: self.cache.capacity_bytes(),
            cache_entries: self.cache.export_entries(),
            cache_tick: tick,
            cache_hits: hits,
            cache_misses: misses,
            cache_evictions: evictions,
            vcache_capacity: self.vcache.capacity_bytes(),
            vcache_accesses: self.vcache.accesses(),
            stats: self.stats,
            census,
        }
    }

    /// Rebuilds an engine from exported persistent state. The engine
    /// starts in Probing mode with fault injection re-derived from
    /// `config` (fault-firing state is harness-side, not persistent).
    pub(crate) fn from_state(config: DsaConfig, state: EngineState) -> Dsa {
        Dsa {
            config,
            cache: DsaCache::from_parts(
                state.cache_capacity,
                state.cache_entries,
                state.cache_tick,
                state.cache_hits,
                state.cache_misses,
                state.cache_evictions,
            ),
            vcache: VerificationCache::with_accesses(
                state.vcache_capacity,
                state.vcache_accesses,
            ),
            stats: state.stats,
            census: state.census.into_iter().collect(),
            mode: Mode::Probing,
            faults: config.faults.map(FaultState::new),
            error: None,
            tracer: Tracer::Off,
        }
    }

    /// Restores an engine + machine pair from a snapshot image.
    ///
    /// # Errors
    ///
    /// Any [`SnapshotError`]: a torn, corrupt, wrong-version or
    /// wrong-config image is rejected — never panicked on.
    pub fn restore(bytes: &[u8], config: DsaConfig) -> Result<(Dsa, Machine), SnapshotError> {
        let snap = Snapshot::from_bytes(bytes)?;
        let dsa = snap.restore_engine(config)?;
        let mut machine = snap.restore_machine();
        if config.test_bug == Some(crate::config::TestBug::CorruptRestore) {
            // Planted bug (fuzz-harness self-test only): the restored
            // memory image is silently off by one bit. The run still
            // completes "successfully" — only a differential kill→resume
            // check can see it. See [`crate::TestBug`].
            if let Some(page) = machine.mem.pages().first().map(|(p, _)| *p) {
                let addr = page * dsa_mem::PAGE_BYTES as u32;
                let byte = machine.mem.read_u8(addr);
                machine.mem.write_u8(addr, byte ^ 1);
            }
        }
        Ok((dsa, machine))
    }

    /// Restores from a snapshot image, degrading to a cold start when
    /// the image is rejected: the caller always gets a usable engine,
    /// plus the typed rejection so it can be reported (the supervised
    /// harness emits it as a `snapshot-rejected` trace event).
    pub fn restore_or_cold(bytes: &[u8], config: DsaConfig) -> Restored {
        match Dsa::restore(bytes, config) {
            Ok((dsa, machine)) => Restored::Warm { dsa, machine },
            Err(error) => Restored::Cold { dsa: Dsa::new(config), error },
        }
    }

    /// Arms a generalized chaos [`FaultSchedule`], replacing whatever
    /// fault plan `config.faults` installed. Schedules live outside
    /// [`DsaConfig`] (which stays `Copy` for memoization keys), so the
    /// chaos harness re-arms them explicitly — including on engines
    /// restored from snapshots, whose images never carry fault state.
    pub fn arm_schedule(&mut self, schedule: FaultSchedule) {
        self.faults = Some(FaultState::from_schedule(schedule));
    }

    /// Attaches a telemetry sink; every engine observation from now on
    /// is emitted as a [`dsa_trace::Event`]. Use
    /// [`dsa_trace::Fanout`]/[`dsa_trace::Shared`] to feed several
    /// consumers.
    pub fn attach_sink(&mut self, sink: impl TraceSink + Send + 'static) {
        self.tracer = Tracer::on(sink);
    }

    /// Whether a telemetry sink is attached.
    pub fn tracing(&self) -> bool {
        self.tracer.enabled()
    }

    /// Signals end-of-stream to the attached sink (flush/footer); call
    /// after the simulation completes. Idempotent, no-op when tracing
    /// is off.
    pub fn finish_trace(&mut self) {
        self.tracer.finish();
    }

    /// The engine error that poisoned this DSA, if any. A poisoned DSA
    /// has detached itself: the run completed (or will complete) with
    /// correct scalar-only results.
    pub fn poisoned(&self) -> Option<EngineError> {
        self.error
    }

    /// The fault-injection state, when a [`FaultPlan`](crate::FaultPlan)
    /// is armed (inspection for tests and the fault matrix).
    pub fn fault_state(&self) -> Option<&FaultState> {
        self.faults.as_ref()
    }

    /// The configuration in effect.
    pub fn config(&self) -> &DsaConfig {
        &self.config
    }

    /// Accumulated statistics. DSA-cache hit/miss counters are folded in.
    pub fn stats(&self) -> DsaStats {
        let mut s = self.stats;
        let (hits, misses, _) = self.cache.counters();
        s.dsa_cache_hits = hits;
        s.dsa_cache_misses = misses;
        // Accounting consistency: every counted miss, vcache access,
        // CIDP evaluation, Array-Map access, select and partial chunk
        // carries a mandatory latency charge, so the reported detection
        // cycles can never fall below the structural floor.
        debug_assert!(
            s.detection_cycles >= s.structural_cycles_floor(&self.config),
            "detection_cycles {} below structural floor {}",
            s.detection_cycles,
            s.structural_cycles_floor(&self.config),
        );
        s
    }

    /// The loop-type census observed so far (one entry per static loop).
    pub fn census(&self) -> LoopCensus {
        let mut c = LoopCensus::default();
        for &class in self.census.values() {
            c.record(class);
        }
        c
    }

    /// The DSA cache (for inspection in tests and experiments).
    pub fn cache(&self) -> &DsaCache {
        &self.cache
    }

    fn classify(&mut self, id: u32, class: LoopClass, cycle: u64) {
        self.census.insert(id, class);
        let name = class.name();
        self.tracer.emit(|| Event::LoopClassified { loop_id: id, class: name, cycle });
    }

    /// Stores `kind` in the DSA cache, charging the cache latency when
    /// `charged` (give-up and template stores pay it; rollback stores
    /// don't — timing behavior predates tracing and must not change),
    /// and emits the insert (and any eviction) as telemetry.
    fn cache_insert(&mut self, id: u32, kind: CachedKind, charged: bool, cycle: u64) {
        let evicted = self.cache.insert(id, kind);
        let dsa_cycles = if charged {
            let l = self.config.dsa_cache_latency as u64;
            self.stats.detection_cycles += l;
            l
        } else {
            0
        };
        self.tracer.emit(|| Event::CacheAccess {
            cache: CacheKind::Dsa,
            outcome: CacheOutcome::Insert,
            loop_id: id,
            count: 1,
            dsa_cycles,
            cycle,
        });
        if evicted > 0 {
            self.tracer.emit(|| Event::CacheAccess {
                cache: CacheKind::Dsa,
                outcome: CacheOutcome::Evict,
                loop_id: id,
                count: evicted,
                dsa_cycles: 0,
                cycle,
            });
        }
    }

    fn give_up(&mut self, id: u32, class: LoopClass, reason: &'static str, ctl: &mut SimControl<'_>) {
        let cycle = ctl.cycles();
        self.cache_insert(id, CachedKind::NonVectorizable(class), true, cycle);
        let name = class.name();
        self.tracer.emit(|| Event::LoopRejected { loop_id: id, class: name, reason, cycle });
        self.classify(id, class, cycle);
        self.mode = Mode::Probing;
    }

    /// Registers one fault opportunity at `site`; `true` means the armed
    /// plan injects a fault here.
    fn fault_fires(&mut self, site: FaultSite, cycle: u64) -> bool {
        let fires = self.faults.as_mut().is_some_and(|f| f.fire(site));
        if fires {
            self.stats.faults_injected += 1;
            let site = site.name();
            self.tracer.emit(|| Event::FaultInjected { site, cycle });
        }
        fires
    }

    /// Detected-inconsistency rollback: the engine found its own state
    /// for loop `id` untrustworthy, so it discards it, flushes any
    /// active coverage and falls back to scalar execution. Correctness
    /// is unaffected — the scalar core has been computing the real
    /// results all along; only the speedup for this loop is lost.
    fn degrade(&mut self, id: u32, class: LoopClass, reason: &'static str, ctl: &mut SimControl<'_>) {
        let cycle = ctl.cycles();
        if ctl.coverage_active() {
            ctl.end_coverage();
            ctl.stall(self.config.resync_latency as u64);
        }
        self.cache_insert(id, CachedKind::NonVectorizable(class), false, cycle);
        let name = class.name();
        self.tracer.emit(|| Event::LoopRolledBack { loop_id: id, class: name, reason, cycle });
        self.classify(id, class, cycle);
        self.stats.degradations += 1;
        self.mode = Mode::Probing;
    }

    /// Terminal degradation: an impossible state transition. The DSA
    /// flushes coverage, records the error and detaches itself; every
    /// further commit is ignored and the run completes scalar-only.
    fn poison(&mut self, err: EngineError, ctl: &mut SimControl<'_>) {
        let cycle = ctl.cycles();
        if ctl.coverage_active() {
            ctl.end_coverage();
            ctl.stall(self.config.resync_latency as u64);
        }
        self.stats.degradations += 1;
        self.stats.poison_events += 1;
        self.error = Some(err);
        self.tracer.emit(|| Event::EnginePoisoned {
            during: err.during,
            expected: err.expected,
            cycle,
        });
        self.mode = Mode::Poisoned;
    }

    // ----- Probing -------------------------------------------------------

    fn probe(&mut self, ev: &TraceEvent, ctl: &mut SimControl<'_>) {
        // Self-check: probing with coverage still suppressed means a
        // rollback flush was skipped at the end of the last vectorized
        // region. Recover it here — one commit of wrongly-covered timing,
        // no functional effect — and count the degradation.
        if ctl.coverage_active() {
            ctl.end_coverage();
            ctl.stall(self.config.resync_latency as u64);
            self.stats.degradations += 1;
            let cycle = ctl.cycles();
            self.tracer.emit(|| Event::LoopRolledBack {
                loop_id: 0,
                class: "unknown",
                reason: "stale-coverage-recovery",
                cycle,
            });
        }
        if !is_loop_branch(ev) {
            return;
        }
        let Some(branch) = ev.branch else { return };
        let id = branch.target;
        self.stats.loops_detected += 1;
        self.stats.stage_loop_detection += 1;
        let cycle = ctl.cycles();
        let end_pc = ev.pc;
        self.tracer.emit(|| Event::LoopDetected { loop_id: id, end_pc, cycle });
        self.tracer.emit(|| Event::StageActivated {
            stage: Stage::LoopDetection,
            loop_id: id,
            dsa_cycles: 0,
            cycle,
        });
        match self.cache.probe(id).cloned() {
            // A cached negative verdict ends detection immediately — the
            // probe is pipelined with the core and costs nothing.
            Some(CachedKind::NonVectorizable(_)) => {
                self.tracer.emit(|| Event::CacheAccess {
                    cache: CacheKind::Dsa,
                    outcome: CacheOutcome::Hit,
                    loop_id: id,
                    count: 1,
                    dsa_cycles: 0,
                    cycle,
                });
            }
            Some(CachedKind::Vectorizable(mut t)) => {
                let dsa_cycles = self.config.dsa_cache_latency as u64;
                self.stats.detection_cycles += dsa_cycles;
                self.tracer.emit(|| Event::CacheAccess {
                    cache: CacheKind::Dsa,
                    outcome: CacheOutcome::Hit,
                    loop_id: id,
                    count: 1,
                    dsa_cycles,
                    cycle,
                });
                if self.fault_fires(FaultSite::CorruptTemplate, cycle) {
                    // Model a bit flip on the cache read path. Every
                    // variant is a structural defect that
                    // `LoopTemplate::validate` must catch in
                    // `hit_execute` before any lane math runs.
                    let variant =
                        self.faults.as_ref().map_or(0, |f| f.pick(FaultSite::CorruptTemplate, 3));
                    match variant {
                        0 => t.elem_bytes = 0,
                        1 => t.elem_bytes = 3,
                        _ => {
                            if let Some(s) = t.streams.first_mut() {
                                s.gap = 7;
                            } else {
                                t.arms.clear();
                            }
                        }
                    }
                }
                self.mode = Mode::Analyzing(Box::new(Analysis {
                    id,
                    end_pc: ev.pc,
                    iter: 1,
                    rec: IterationRecorder::new(id, ev.pc),
                    collected: None,
                    hit: Some(t),
                    cond: None,
                    nest: None,
                    call_depth: 0,
                }));
            }
            None => {
                let dsa_cycles = self.config.dsa_cache_latency as u64;
                self.stats.detection_cycles += dsa_cycles;
                self.stats.stage_data_collection += 1;
                self.tracer.emit(|| Event::CacheAccess {
                    cache: CacheKind::Dsa,
                    outcome: CacheOutcome::Miss,
                    loop_id: id,
                    count: 1,
                    dsa_cycles,
                    cycle,
                });
                self.tracer.emit(|| Event::StageActivated {
                    stage: Stage::DataCollection,
                    loop_id: id,
                    dsa_cycles: 0,
                    cycle,
                });
                self.mode = Mode::Analyzing(Box::new(Analysis {
                    id,
                    end_pc: ev.pc,
                    iter: 1,
                    rec: IterationRecorder::new(id, ev.pc),
                    collected: None,
                    hit: None,
                    cond: None,
                    nest: None,
                    call_depth: 0,
                }));
            }
        }
    }

    // ----- Analysis ------------------------------------------------------

    /// Handles one event while analysing; returns `true` if the event
    /// must be re-dispatched from probing (nest abandonment).
    fn analyze(
        &mut self,
        ev: &TraceEvent,
        machine: &Machine,
        ctl: &mut SimControl<'_>,
    ) -> Result<bool, EngineError> {
        let a = expect_mode!(self, Analyzing, "analyze");
        let id = a.id;
        let end_pc = a.end_pc;

        match ev.instr {
            Instr::Bl { .. } => a.call_depth += 1,
            Instr::BxLr => a.call_depth = a.call_depth.saturating_sub(1),
            _ => {}
        }

        // Closing branch of the tracked loop?
        if ev.pc == end_pc && matches!(ev.branch, Some(b) if b.taken && b.target == id) {
            self.finish_iteration(ev, machine, ctl)?;
            return Ok(false);
        }

        // A different loop boundary: an inner loop of the tracked one.
        if is_loop_branch(ev) {
            let Some(b) = ev.branch else { return Ok(false) };
            let inner_ok = id < b.target && ev.pc < end_pc;
            match (&a.nest, inner_ok) {
                // Already observing this inner loop: expected.
                (Some(n), true) if n.inner_id == b.target => return Ok(false),
                (None, true) if self.config.features.loop_nests && a.hit.is_none() => {
                    // Fusion candidate when the inner loop is already
                    // verified as a plain count loop with a static trip.
                    if let Some(CachedKind::Vectorizable(t)) = self.cache.peek(b.target) {
                        let fusable = t.class == LoopClass::Count
                            && t.arms.is_empty()
                            && t.partial_distance.is_none()
                            && t.fused_inner_trip.is_none()
                            && t.streams.iter().all(|s| s.occ == 0)
                            && t.trip_imm.is_some();
                        if fusable {
                            let nest = NestAnalysis {
                                inner_id: b.target,
                                inner_end: ev.pc,
                                inner_trip: t.trip_imm.unwrap_or(1) as u32,
                                inner_template: t.clone(),
                            };
                            let a = expect_mode!(self, Analyzing, "nest observation");
                            a.nest = Some(nest);
                            return Ok(false);
                        }
                    }
                    self.give_up(id, LoopClass::Nest, "nest-inner-not-fusable", ctl);
                    return Ok(true);
                }
                _ => {
                    self.give_up(id, LoopClass::Nest, "unsupported-nest", ctl);
                    return Ok(true);
                }
            }
        }

        let a = expect_mode!(self, Analyzing, "iteration recording");
        a.rec.record(ev, machine);

        // Loop exited before analysis finished (trip shorter than the
        // analysis window): nothing to do.
        let next = machine.pc();
        let in_loop = (id..=end_pc).contains(&next);
        if !in_loop && a.call_depth == 0 && !machine.is_halted() {
            // Tolerate the sentinel stop-check's exit and the epilogue:
            // only abandon when control is definitely past the loop.
            self.mode = Mode::Probing;
        }
        Ok(false)
    }

    fn finish_iteration(
        &mut self,
        ev: &TraceEvent,
        machine: &Machine,
        ctl: &mut SimControl<'_>,
    ) -> Result<(), EngineError> {
        let a = expect_mode!(self, Analyzing, "finish_iteration");
        let closing_unconditional = matches!(ev.instr, Instr::B { cond: Cond::Al, .. });
        let index_reg = a.rec.last_cmp_reg();
        let rec = std::mem::replace(&mut a.rec, IterationRecorder::new(a.id, a.end_pc));
        let mut profile = rec.finish(index_reg);
        a.iter += 1;
        let iter = a.iter;
        let id = a.id;

        // Charge Verification-Cache traffic for the recorded iteration.
        let cycle = ctl.cycles();
        let n_acc = profile.accesses.len() as u64;
        self.stats.vcache_accesses += n_acc;
        let vcache_cycles = n_acc * self.config.vcache_latency as u64;
        self.stats.detection_cycles += vcache_cycles;
        self.vcache.record_accesses(n_acc);
        if n_acc > 0 {
            self.tracer.emit(|| Event::CacheAccess {
                cache: CacheKind::Verification,
                outcome: CacheOutcome::Insert,
                loop_id: id,
                count: n_acc as u32,
                dsa_cycles: vcache_cycles,
                cycle,
            });
        }

        // Fault injection: lose one Verification-Cache entry after the
        // traffic was accounted.
        if self.fault_fires(FaultSite::DropVcacheEntry, cycle) {
            profile.accesses.pop();
        }
        // Consistency check: the analysis pipeline must agree with the
        // Verification-Cache accounting; a lost entry means the recorded
        // streams can no longer be trusted.
        if profile.accesses.len() as u64 != n_acc {
            self.degrade(id, LoopClass::NonVectorizable, "vcache-entry-lost", ctl);
            return Ok(());
        }

        let a = expect_mode!(self, Analyzing, "post-vcache analysis");
        // Nest observation stores only the per-stream heads, not every
        // inner-iteration address, so the capacity check is skipped.
        if a.nest.is_none() && !self.vcache.fits(profile.accesses.len()) {
            self.give_up(id, LoopClass::NonVectorizable, "vcache-capacity", ctl);
            return Ok(());
        }

        // Cache-hit fast path: one collection iteration, then execute.
        if let Some(t) = a.hit.clone() {
            self.stats.stage_store_id_execution += 1;
            self.tracer.emit(|| Event::StageActivated {
                stage: Stage::StoreIdExecution,
                loop_id: id,
                dsa_cycles: 0,
                cycle,
            });
            return self.hit_execute(t, profile, machine, ctl);
        }

        // Nest-fusion path: the iteration contained a verified inner
        // count loop; check the outer body is pure overhead.
        if a.nest.is_some() {
            return self.nest_step(profile, ctl);
        }

        // Structural rejections discovered during Data Collection.
        if profile.body.nonvec > 0 || profile.body.elem_bytes.is_none() {
            self.give_up(id, LoopClass::NonVectorizable, "non-vector-ops", ctl);
            return Ok(());
        }
        if profile.has_call && !self.config.features.function_loops {
            self.give_up(id, LoopClass::Function, "function-loops-disabled", ctl);
            return Ok(());
        }
        if closing_unconditional || profile.exit_check_pc.is_some() && profile.closing_cmp.is_none()
        {
            // Sentinel shape.
            if !self.config.features.sentinel_loops || profile.cond_branches > 0 {
                self.give_up(id, LoopClass::Sentinel, "sentinel-unsupported", ctl);
                return Ok(());
            }
        }
        if profile.cond_branches > 0 {
            if !self.config.features.conditional_loops {
                self.give_up(id, LoopClass::Conditional, "conditional-loops-disabled", ctl);
                return Ok(());
            }
            self.stats.stage_mapping += 1;
            self.stats.array_map_accesses += 1;
            let map_cycles = self.config.array_map_latency as u64;
            self.stats.detection_cycles += map_cycles;
            self.tracer.emit(|| Event::StageActivated {
                stage: Stage::Mapping,
                loop_id: id,
                dsa_cycles: 0,
                cycle,
            });
            self.tracer.emit(|| Event::CacheAccess {
                cache: CacheKind::ArrayMap,
                outcome: CacheOutcome::Hit,
                loop_id: id,
                count: 1,
                dsa_cycles: map_cycles,
                cycle,
            });
            return self.conditional_step(profile, iter, machine, ctl);
        }

        let a = expect_mode!(self, Analyzing, "data collection");
        if a.collected.is_none() {
            a.collected = Some(profile);
            self.stats.stage_data_collection += 1;
            self.tracer.emit(|| Event::StageActivated {
                stage: Stage::DataCollection,
                loop_id: id,
                dsa_cycles: 0,
                cycle,
            });
            return Ok(());
        }

        // Dependency Analysis: two straight-line profiles available.
        self.stats.stage_dependency_analysis += 1;
        self.tracer.emit(|| Event::StageActivated {
            stage: Stage::DependencyAnalysis,
            loop_id: id,
            dsa_cycles: 0,
            cycle,
        });
        let Some(p2) = a.collected.clone() else {
            return Err(EngineError { expected: "collected profile", during: "dependency analysis" });
        };
        self.decide_straight(p2, profile, closing_unconditional, machine, ctl)
    }

    /// Matches two profiles into stream templates (per-iteration gaps).
    fn match_streams(
        p2: &IterationProfile,
        p3: &IterationProfile,
        iter_delta: u32,
    ) -> Option<Vec<(StreamTemplate, u32)>> {
        let mut out = Vec::new();
        if p2.accesses.len() != p3.accesses.len() {
            return None;
        }
        for s2 in &p2.accesses {
            let s3 = p3.find(s2.pc, s2.occ)?;
            if s3.is_write != s2.is_write || s3.bytes != s2.bytes {
                return None;
            }
            let total_gap = s3.addr as i64 - s2.addr as i64;
            if total_gap % iter_delta as i64 != 0 {
                return None;
            }
            let gap = total_gap / iter_delta as i64;
            out.push((
                StreamTemplate {
                    pc: s2.pc,
                    occ: s2.occ,
                    is_write: s2.is_write,
                    bytes: s2.bytes,
                    gap,
                },
                s2.addr,
            ));
        }
        Some(out)
    }

    fn trip_info(
        c2: Option<CmpObs>,
        c3: Option<CmpObs>,
    ) -> Option<(i64 /* step */, i64 /* remaining after the later obs */, bool /* imm */)> {
        let (c2, c3) = (c2?, c3?);
        if c2.pc != c3.pc || c2.rhs != c3.rhs || c2.rhs_is_imm != c3.rhs_is_imm {
            return None;
        }
        let step = c3.lhs - c2.lhs;
        if step <= 0 {
            return None;
        }
        let diff = c3.rhs - c3.lhs;
        if diff < 0 || diff % step != 0 {
            return None;
        }
        Some((step, diff / step, c3.rhs_is_imm))
    }

    #[allow(clippy::too_many_arguments)]
    fn decide_straight(
        &mut self,
        p2: IterationProfile,
        p3: IterationProfile,
        closing_unconditional: bool,
        _machine: &Machine,
        ctl: &mut SimControl<'_>,
    ) -> Result<(), EngineError> {
        let a = expect_mode!(self, Analyzing, "decide_straight");
        let (id, end_pc) = (a.id, a.end_pc);
        let sentinel = closing_unconditional;
        let cycle = ctl.cycles();

        let Some(streams_all) = Self::match_streams(&p2, &p3, 1) else {
            self.give_up(id, LoopClass::NonVectorizable, "stream-mismatch", ctl);
            return Ok(());
        };
        let Some(elem) = p3.body.elem_bytes.map(i64::from) else {
            // Checked during collection; a missing width here means the
            // profile was corrupted between stages.
            self.give_up(id, LoopClass::NonVectorizable, "profile-corrupt", ctl);
            return Ok(());
        };

        // Split invariant re-loads (gap 0) from vectorizable streams.
        let mut streams: Vec<(StreamTemplate, u32)> = Vec::new();
        for (s, addr) in &streams_all {
            if s.gap == 0 && !s.is_write {
                continue; // hoisted to a splat by the SIMD generator
            }
            if s.gap != elem {
                self.give_up(id, LoopClass::NonVectorizable, "non-unit-stride", ctl);
                return Ok(());
            }
            streams.push((*s, *addr));
        }
        if !streams.iter().any(|(s, _)| s.is_write) {
            // Reductions into registers / pure address walks: the DSA has
            // no vector-register carry support.
            self.give_up(id, LoopClass::NonVectorizable, "no-store-stream", ctl);
            return Ok(());
        }

        // Trip prediction.
        let (trip_step, remaining_after3, rhs_is_imm, budget);
        let lanes = 16 / elem as u32;
        if sentinel {
            let spec = lanes; // first encounter: one full vector
            budget = spec;
            trip_step = 1;
            remaining_after3 = spec as i64;
            rhs_is_imm = false;
        } else {
            match Self::trip_info(p2.closing_cmp, p3.closing_cmp) {
                Some((step, rem, imm)) => {
                    trip_step = step;
                    remaining_after3 = rem;
                    rhs_is_imm = imm;
                    budget = 0;
                }
                None => {
                    self.give_up(id, LoopClass::NonVectorizable, "irregular-trip", ctl);
                    return Ok(());
                }
            }
            if !rhs_is_imm && !self.config.features.dynamic_range_loops {
                self.give_up(id, LoopClass::DynamicRange, "dynamic-range-disabled", ctl);
                return Ok(());
            }
        }

        // CIDP over the reconstructed streams.
        let cidp_streams: Vec<cidp::Stream> = streams_all
            .iter()
            .map(|(s, addr)| cidp::Stream {
                addr2: *addr as i64,
                gap: s.gap,
                is_write: s.is_write,
                bytes: s.bytes,
            })
            .collect();
        let pairs = cidp_streams.iter().filter(|s| s.is_write).count()
            * cidp_streams.iter().filter(|s| !s.is_write).count();
        self.stats.cidp_evaluations += pairs as u64;
        let cidp_cycles = (pairs as u64) * self.config.cidp_latency as u64;
        self.stats.detection_cycles += cidp_cycles;
        let trip_for_cidp = if sentinel { 3 + budget } else { 3 + remaining_after3 as u32 };
        let outcome = cidp::predict(&cidp_streams, trip_for_cidp);
        let verdict_distance = match outcome {
            CidpOutcome::NoDependency => None,
            CidpOutcome::Dependency { distance } => Some(distance),
        };
        self.tracer.emit(|| Event::DependencyVerdict {
            loop_id: id,
            pairs: pairs as u32,
            distance: verdict_distance,
            dsa_cycles: cidp_cycles,
            cycle,
        });
        let partial_distance = match outcome {
            CidpOutcome::NoDependency => None,
            CidpOutcome::Dependency { distance } => {
                if self.config.features.partial_vectorization && distance >= lanes {
                    Some(distance)
                } else {
                    self.give_up(id, LoopClass::NonVectorizable, "cross-iteration-dependency", ctl);
                    return Ok(());
                }
            }
        };

        let class = if sentinel {
            LoopClass::Sentinel
        } else if partial_distance.is_some() {
            LoopClass::Partial
        } else if p3.has_call {
            LoopClass::Function
        } else if !rhs_is_imm {
            LoopClass::DynamicRange
        } else {
            LoopClass::Count
        };

        let template = LoopTemplate {
            class,
            end_pc,
            callee_range: p3.callee_range,
            exit_check_pc: p3.exit_check_pc,
            elem_bytes: elem as u8,
            float: p3.body.float,
            streams: streams.iter().map(|(s, _)| *s).collect(),
            ops: OpMix {
                alu: p3.body.vec_alu,
                mul: p3.body.vec_mul,
                shift: p3.body.vec_shift,
            },
            arms: Vec::new(),
            partial_distance,
            spec_range: budget,
            trip_imm: if rhs_is_imm { p3.closing_cmp.map(|c| c.rhs) } else { None },
            cover_range: None,
            fused_inner_trip: None,
        };

        self.stats.stage_store_id_execution += 1;
        self.tracer.emit(|| Event::StageActivated {
            stage: Stage::StoreIdExecution,
            loop_id: id,
            dsa_cycles: 0,
            cycle,
        });
        self.cache_insert(id, CachedKind::Vectorizable(template.clone()), true, cycle);
        self.classify(id, class, cycle);

        // Remaining work starts at iteration 4; stream bases advance one
        // gap past the iteration-3 observation.
        let bases: Vec<(StreamTemplate, u32)> = streams
            .iter()
            .map(|(s, a2)| {
                let p3_addr = p3.find(s.pc, s.occ).map(|x| x.addr).unwrap_or(*a2);
                (*s, (p3_addr as i64 + s.gap) as u32)
            })
            .collect();
        // Iterations 1–3 ran scalar during analysis; everything after the
        // iteration-3 closing compare is vectorized.
        let count = if sentinel { budget } else { remaining_after3 as u32 };
        let _ = trip_step;
        self.launch(template, bases, count, ctl)
    }

    /// Cache-hit path: one observed iteration gives fresh stream bases.
    fn hit_execute(
        &mut self,
        template: LoopTemplate,
        profile: IterationProfile,
        _machine: &Machine,
        ctl: &mut SimControl<'_>,
    ) -> Result<(), EngineError> {
        let a = expect_mode!(self, Analyzing, "hit_execute");
        let (id, end_pc) = (a.id, a.end_pc);

        // Validate the template as it leaves the cache: a corrupted
        // entry (bit flip, fault injection) must degrade the loop to
        // scalar, not drive the planner's lane math into a panic.
        if template.validate().is_err() {
            self.degrade(id, template.class, "corrupt-template", ctl);
            return Ok(());
        }
        if template.class == LoopClass::Conditional {
            // Arms are (re-)located as they execute; go straight to
            // conditional execution with nothing injected yet.
            self.begin_conditional_execution(id, end_pc, template, ctl);
            return Ok(());
        }

        // Recompute this instance's remaining trip.
        let count;
        if template.class == LoopClass::Sentinel {
            // Sanity-check the stored speculative range: a lying trip
            // predictor would otherwise grow the injected block without
            // bound and the watchdog — not the DSA — would end the run.
            if template.spec_range > MAX_SPEC_RANGE {
                self.degrade(id, LoopClass::Sentinel, "spec-range-overflow", ctl);
                return Ok(());
            }
            count = (template.spec_range.max(1)).div_ceil(template.lanes()) * template.lanes();
        } else {
            let Some(cmp) = profile.closing_cmp else {
                self.mode = Mode::Probing;
                return Ok(());
            };
            let diff = cmp.rhs - cmp.lhs;
            if diff <= 0 {
                self.mode = Mode::Probing;
                return Ok(());
            }
            // For a fused nest the observed iteration is one *outer*
            // iteration: each remaining one is worth `inner_trip`
            // elements and the streams advance a whole row per entry.
            count = diff as u32 * template.fused_inner_trip.unwrap_or(1);
        }

        // Fresh bases: this iteration's addresses plus one stride.
        let stride = template.fused_inner_trip.unwrap_or(1) as i64;
        let mut bases = Vec::new();
        for s in &template.streams {
            match profile.find(s.pc, s.occ) {
                Some(obs) => bases.push((*s, (obs.addr as i64 + s.gap * stride) as u32)),
                None => {
                    // The cached shape no longer matches; re-analyse.
                    let cycle = ctl.cycles();
                    self.cache_insert(
                        id,
                        CachedKind::NonVectorizable(LoopClass::NonVectorizable),
                        false,
                        cycle,
                    );
                    self.tracer.emit(|| Event::LoopRejected {
                        loop_id: id,
                        class: "non-vectorizable",
                        reason: "template-shape-mismatch",
                        cycle,
                    });
                    self.mode = Mode::Probing;
                    return Ok(());
                }
            }
        }
        self.launch(template, bases, count, ctl)
    }

    /// Flushes, injects the SIMD work and enters coverage.
    fn launch(
        &mut self,
        template: LoopTemplate,
        bases: Vec<(StreamTemplate, u32)>,
        count: u32,
        ctl: &mut SimControl<'_>,
    ) -> Result<(), EngineError> {
        let a = expect_mode!(self, Analyzing, "launch");
        let (id, end_pc) = (a.id, a.end_pc);
        let class_name = template.class.name();
        if count < self.config.min_profitable_iterations {
            // Not worth a pipeline flush; the verdict stays cached so a
            // longer instance of the same loop can still vectorize.
            let cycle = ctl.cycles();
            self.tracer.emit(|| Event::LoopRejected {
                loop_id: id,
                class: class_name,
                reason: "unprofitable-trip",
                cycle,
            });
            self.mode = Mode::Probing;
            return Ok(());
        }

        // Alignment peeling: delay vector execution by up to lanes-1
        // iterations so the store stream starts on a 16-byte boundary —
        // the DSA observes the addresses, so unlike the compiler it can
        // always use the aligned access forms.
        let elem = template.elem_bytes as u32;
        let peel = bases
            .iter()
            .find(|(s, _)| s.is_write)
            .or_else(|| bases.first())
            .map(|(_, a)| ((16 - (a % 16)) % 16) / elem)
            .unwrap_or(0)
            .min(count);
        let mut bases = bases;
        for (s, a) in &mut bases {
            *a = (*a as i64 + s.gap * peel as i64) as u32;
        }
        let mut count = count - peel;
        if template.class == LoopClass::Sentinel {
            // Sentinel speculation may overshoot freely (unselected lanes
            // are discarded); keep the block a whole number of vectors so
            // continued speculation never degenerates to lane ops.
            let lanes = template.lanes();
            count = count.div_ceil(lanes).max(1) * lanes;
        }
        if count < self.config.min_profitable_iterations {
            let cycle = ctl.cycles();
            self.tracer.emit(|| Event::LoopRejected {
                loop_id: id,
                class: class_name,
                reason: "unprofitable-trip",
                cycle,
            });
            self.mode = Mode::Probing;
            return Ok(());
        }
        ctl.stall(self.config.flush_latency as u64);

        if let Some(d) = template.partial_distance {
            // Partial vectorization: chunks of `d` iterations, each
            // re-verified (multiple cross-iteration analyses).
            let mut done = 0;
            let mut chunk_bases = bases.clone();
            while done < count {
                let n = d.min(count - done);
                let p = plan::build_plan(&template, &chunk_bases, template.ops, n, self.config.leftover);
                self.stats.injected_ops += p.ops.len() as u64;
                self.stats.discarded_lanes += p.discarded_lanes as u64;
                ctl.inject(&p.ops);
                self.stats.partial_chunks += 1;
                self.stats.detection_cycles += self.config.partial_chunk_latency as u64;
                let (chunk_lat, cycle) = (self.config.partial_chunk_latency, ctl.cycles());
                self.tracer.emit(|| Event::PartialChunk {
                    loop_id: id,
                    chunk_iters: n,
                    dsa_cycles: chunk_lat as u64,
                    cycle,
                });
                done += n;
                for (s, a) in &mut chunk_bases {
                    *a = (*a as i64 + s.gap * n as i64) as u32;
                }
            }
        } else {
            let p = plan::build_plan(&template, &bases, template.ops, count, self.config.leftover);
            self.stats.injected_ops += p.ops.len() as u64;
            self.stats.discarded_lanes += p.discarded_lanes as u64;
            ctl.inject(&p.ops);
        }

        self.stats.loops_vectorized += 1;
        {
            let cycle = ctl.cycles();
            self.tracer.emit(|| Event::LoopVectorized {
                loop_id: id,
                class: class_name,
                planned: count,
                peeled: peel,
                cycle,
            });
        }
        let callee_range = template.callee_range;
        let kind = if template.class == LoopClass::Sentinel {
            // Bases for the block after the one just injected.
            let next_bases: Vec<(StreamTemplate, u32)> = bases
                .iter()
                .map(|(s, a)| (*s, (*a as i64 + s.gap * count as i64) as u32))
                .collect();
            ExecKind::Sentinel {
                check_hi: template.exit_check_pc.unwrap_or(id),
                template,
                budget: count,
                block: count,
                bases: next_bases,
                injected_elems: count,
            }
        } else {
            ExecKind::Plain { peel }
        };
        if peel == 0 {
            ctl.begin_coverage();
        }
        self.mode = Mode::Executing(Box::new(Execution {
            id,
            lo: id,
            hi: end_pc,
            callee: callee_range,
            kind,
            iters: 0,
            call_depth: 0,
        }));
        Ok(())
    }

    /// Second analysis phase for a fusable nest: two observed outer
    /// iterations give the per-outer-iteration stream gaps; if the outer
    /// body is pure overhead and the inner streams are contiguous row to
    /// row, the nest executes as one fused loop (§4.6.3, scenario with
    /// no instructions between the loops).
    fn nest_step(
        &mut self,
        profile: IterationProfile,
        ctl: &mut SimControl<'_>,
    ) -> Result<(), EngineError> {
        let a = expect_mode!(self, Analyzing, "nest_step");
        let id = a.id;
        let end_pc = a.end_pc;
        let Some(nest) = a.nest.as_ref() else {
            return Err(EngineError { expected: "nest observation", during: "nest_step" });
        };
        let (inner_id, inner_end) = (nest.inner_id, nest.inner_end);
        let inner_trip = nest.inner_trip;
        let template = nest.inner_template.clone();

        let in_inner = |pc: u32| (inner_id..=inner_end).contains(&pc);
        // Outer-only value operations or memory accesses break fusion.
        let overhead_only = profile.value_op_pcs.iter().all(|&pc| in_inner(pc))
            && profile.accesses.iter().all(|s| in_inner(s.pc))
            && !profile.has_call
            && profile.cond_branch_pcs.iter().all(|&pc| in_inner(pc) || pc < inner_id);
        if !overhead_only {
            self.give_up(id, LoopClass::Nest, "nest-outer-not-overhead", ctl);
            return Ok(());
        }

        if a.collected.is_none() {
            a.collected = Some(profile);
            self.stats.stage_data_collection += 1;
            let cycle = ctl.cycles();
            self.tracer.emit(|| Event::StageActivated {
                stage: Stage::DataCollection,
                loop_id: id,
                dsa_cycles: 0,
                cycle,
            });
            return Ok(());
        }
        let Some(p2) = a.collected.clone() else {
            return Err(EngineError { expected: "collected outer iteration", during: "nest_step" });
        };
        self.stats.stage_dependency_analysis += 1;
        {
            let cycle = ctl.cycles();
            self.tracer.emit(|| Event::StageActivated {
                stage: Stage::DependencyAnalysis,
                loop_id: id,
                dsa_cycles: 0,
                cycle,
            });
        }

        // Row-to-row gaps must be exactly one inner trip of elements.
        let mut bases = Vec::new();
        for s in &template.streams {
            let (Some(a2), Some(a3)) = (p2.find(s.pc, 0), profile.find(s.pc, 0)) else {
                self.give_up(id, LoopClass::Nest, "stream-mismatch", ctl);
                return Ok(());
            };
            let row_gap = a3.addr as i64 - a2.addr as i64;
            if row_gap != s.gap * inner_trip as i64 {
                self.give_up(id, LoopClass::Nest, "nest-row-gap", ctl);
                return Ok(());
            }
            bases.push((*s, (a3.addr as i64 + row_gap) as u32));
        }

        // Remaining outer iterations from the outer closing compare.
        let Some((_, remaining_outer, rhs_is_imm)) =
            Self::trip_info(p2.closing_cmp, profile.closing_cmp)
        else {
            self.give_up(id, LoopClass::Nest, "irregular-trip", ctl);
            return Ok(());
        };
        if !rhs_is_imm && !self.config.features.dynamic_range_loops {
            self.give_up(id, LoopClass::Nest, "dynamic-range-disabled", ctl);
            return Ok(());
        }

        let fused = LoopTemplate {
            class: LoopClass::Nest,
            end_pc,
            trip_imm: if rhs_is_imm { profile.closing_cmp.map(|c| c.rhs) } else { None },
            fused_inner_trip: Some(inner_trip),
            ..template
        };
        self.stats.stage_store_id_execution += 1;
        let cycle = ctl.cycles();
        self.tracer.emit(|| Event::StageActivated {
            stage: Stage::StoreIdExecution,
            loop_id: id,
            dsa_cycles: 0,
            cycle,
        });
        self.cache_insert(id, CachedKind::Vectorizable(fused.clone()), true, cycle);
        self.classify(id, LoopClass::Nest, cycle);
        let count = remaining_outer as u32 * inner_trip;
        self.launch(fused, bases, count, ctl)
    }

    // ----- Conditional loops ----------------------------------------------

    fn conditional_step(
        &mut self,
        mut profile: IterationProfile,
        iter: u32,
        _machine: &Machine,
        ctl: &mut SimControl<'_>,
    ) -> Result<(), EngineError> {
        let a = expect_mode!(self, Analyzing, "conditional_step");
        let (id, end_pc) = (a.id, a.end_pc);
        if iter > self.config.conditional_analysis_limit {
            self.give_up(id, LoopClass::Conditional, "mapping-budget-exhausted", ctl);
            return Ok(());
        }

        // Fault injection: a stuck Array-Map bit flips the condition
        // path observed for this iteration.
        if self.fault_fires(FaultSite::FlipArrayMapCondition, ctl.cycles()) {
            let bit = self
                .faults
                .as_ref()
                .map_or(0, |f| f.pick(FaultSite::FlipArrayMapCondition, 63));
            profile.path ^= 1 << bit;
        }

        let a = expect_mode!(self, Analyzing, "condition mapping");
        let cond = a.cond.get_or_insert_with(|| CondAnalysis {
            arms: BTreeMap::new(),
            pcs_seen: HashSet::new(),
            verified: BTreeMap::new(),
        });
        cond.pcs_seen.extend(profile.pcs.iter().copied());
        let path = profile.path;
        let closing = profile.closing_cmp;

        // Consistency check: the path hash must agree with the visited
        // PC set. An iteration whose PCs match a known arm but whose
        // path differs means an Array Map lied — discard the analysis
        // and run this loop scalar.
        let map_lied =
            cond.arms.iter().any(|(&p, (obs, _, _))| p != path && obs.pcs == profile.pcs);
        if map_lied {
            self.degrade(id, LoopClass::Conditional, "array-map-inconsistent", ctl);
            return Ok(());
        }

        let arms_limit = self.config.array_maps + self.config.spare_vector_regs;
        match cond.arms.get_mut(&path) {
            None => {
                cond.arms.insert(path, (profile, iter, None));
            }
            Some((first, first_iter, second)) if second.is_none() => {
                // Second observation: verify the arm.
                let delta = iter - *first_iter;
                let Some(streams) = Self::match_streams(first, &profile, delta) else {
                    self.give_up(id, LoopClass::Conditional, "stream-mismatch", ctl);
                    return Ok(());
                };
                if profile.body.vec_ops() > arms_limit {
                    self.give_up(id, LoopClass::Conditional, "arm-capacity", ctl);
                    return Ok(());
                }
                let arm = ArmTemplate {
                    path,
                    streams: streams.iter().map(|(s, _)| *s).collect(),
                    ops: OpMix {
                        alu: profile.body.vec_alu,
                        mul: profile.body.vec_mul,
                        shift: profile.body.vec_shift,
                    },
                };
                *second = Some((profile, iter));
                cond.verified.insert(path, arm);
            }
            _ => {}
        }

        // Completion: every PC of the body visited and every observed arm
        // verified.
        let body_pcs = (id..end_pc).count(); // closing branch excluded
        let all_pcs = cond.pcs_seen.len() >= body_pcs;
        let all_verified = !cond.arms.is_empty()
            && cond.arms.values().all(|(_, _, second)| second.is_some());
        if !(all_pcs && all_verified) {
            return Ok(());
        }

        // The covered region: PCs executed in some arms but not all —
        // the condition-dependent bodies. Condition evaluation (the
        // common PCs) keeps running on the scalar core to drive the
        // Vector-Map mapping.
        let cover_range = {
            let profiles: Vec<&IterationProfile> =
                cond.arms.values().map(|(p, _, _)| p).collect();
            let union: HashSet<u32> =
                profiles.iter().flat_map(|p| p.pcs.iter().copied()).collect();
            let common: HashSet<u32> = profiles
                .iter()
                .fold(union.clone(), |acc, p| acc.intersection(&p.pcs).copied().collect());
            let arm_pcs: Vec<u32> = union.difference(&common).copied().collect();
            match (arm_pcs.iter().min(), arm_pcs.iter().max()) {
                (Some(&lo), Some(&hi)) => Some((lo, hi)),
                _ => None,
            }
        };

        // CIDP per arm over its streams.
        let arms: Vec<ArmTemplate> = cond.verified.values().cloned().collect();
        let elem = arms
            .iter()
            .flat_map(|a| a.streams.iter())
            .map(|s| s.bytes)
            .max()
            .unwrap_or(4);
        if closing.is_none() {
            self.give_up(id, LoopClass::Conditional, "irregular-trip", ctl);
            return Ok(());
        }
        for arm in &arms {
            let streams: Vec<cidp::Stream> = arm
                .streams
                .iter()
                .map(|s| cidp::Stream { addr2: 0, gap: s.gap, is_write: s.is_write, bytes: s.bytes })
                .collect();
            // Per-arm gap sanity: unit stride only.
            if arm.streams.iter().any(|s| s.gap != elem as i64 && s.gap != 0) {
                self.give_up(id, LoopClass::Conditional, "non-unit-stride", ctl);
                return Ok(());
            }
            let _ = streams;
            self.stats.cidp_evaluations += 1;
            self.stats.detection_cycles += self.config.cidp_latency as u64;
            let (cidp_lat, cycle) = (self.config.cidp_latency, ctl.cycles());
            self.tracer.emit(|| Event::DependencyVerdict {
                loop_id: id,
                pairs: 1,
                distance: None,
                dsa_cycles: cidp_lat as u64,
                cycle,
            });
        }

        let template = LoopTemplate {
            class: LoopClass::Conditional,
            end_pc,
            callee_range: None,
            exit_check_pc: None,
            elem_bytes: elem,
            float: false,
            streams: Vec::new(),
            ops: OpMix::default(),
            arms,
            partial_distance: None,
            spec_range: 0,
            trip_imm: closing.filter(|c| c.rhs_is_imm).map(|c| c.rhs),
            cover_range,
            fused_inner_trip: None,
        };
        self.stats.stage_store_id_execution += 1;
        let cycle = ctl.cycles();
        self.tracer.emit(|| Event::StageActivated {
            stage: Stage::StoreIdExecution,
            loop_id: id,
            dsa_cycles: 0,
            cycle,
        });
        self.cache_insert(id, CachedKind::Vectorizable(template.clone()), false, cycle);
        self.classify(id, LoopClass::Conditional, cycle);
        ctl.stall(self.config.flush_latency as u64);
        self.begin_conditional_execution(id, end_pc, template, ctl);
        Ok(())
    }

    fn begin_conditional_execution(
        &mut self,
        id: u32,
        end_pc: u32,
        template: LoopTemplate,
        ctl: &mut SimControl<'_>,
    ) {
        self.stats.loops_vectorized += 1;
        let cycle = ctl.cycles();
        self.tracer.emit(|| Event::LoopVectorized {
            loop_id: id,
            class: "conditional",
            planned: 0,
            peeled: 0,
            cycle,
        });
        ctl.begin_coverage();
        self.mode = Mode::Executing(Box::new(Execution {
            id,
            lo: id,
            hi: end_pc,
            callee: None,
            kind: ExecKind::Conditional {
                template,
                window_arms: BTreeMap::new(),
                window_fill: 0,
                rec: IterationRecorder::new(id, end_pc),
                injected_elems: 0,
            },
            iters: 0,
            call_depth: 0,
        }));
    }

    // ----- Execution -------------------------------------------------------

    fn execute(
        &mut self,
        ev: &TraceEvent,
        machine: &Machine,
        ctl: &mut SimControl<'_>,
    ) -> Result<(), EngineError> {
        let x = expect_mode!(self, Executing, "execute");
        match ev.instr {
            Instr::Bl { .. } => x.call_depth += 1,
            Instr::BxLr => x.call_depth = x.call_depth.saturating_sub(1),
            _ => {}
        }

        let boundary =
            ev.pc == x.hi && matches!(ev.branch, Some(b) if b.taken && b.target == x.lo);
        if boundary {
            x.iters += 1;
        }

        match &mut x.kind {
            ExecKind::Plain { peel } => {
                // Coverage starts once the peeled (alignment) iterations
                // have run scalar.
                let peel = *peel;
                let next = machine.pc();
                if peel > 0 && (x.lo..=x.hi).contains(&next) {
                    if x.iters >= peel {
                        ctl.begin_coverage();
                    } else {
                        ctl.end_coverage();
                    }
                }
            }
            ExecKind::Sentinel { template, budget, block, check_hi, bases, injected_elems } => {
                // If the loop outlived the speculation, speculate the
                // next block (continued partial vectorization, §4.6.5).
                if boundary && x.iters == *budget {
                    let plan = plan::build_plan(
                        template,
                        bases,
                        template.ops,
                        *block,
                        self.config.leftover,
                    );
                    self.stats.injected_ops += plan.ops.len() as u64;
                    self.stats.partial_chunks += 1;
                    self.stats.detection_cycles += self.config.partial_chunk_latency as u64;
                    let (xid, n, chunk_lat, cycle) =
                        (x.id, *block, self.config.partial_chunk_latency, ctl.cycles());
                    self.tracer.emit(|| Event::PartialChunk {
                        loop_id: xid,
                        chunk_iters: n,
                        dsa_cycles: chunk_lat as u64,
                        cycle,
                    });
                    ctl.inject(&plan.ops);
                    for (s, a) in bases.iter_mut() {
                        *a = (*a as i64 + s.gap * *block as i64) as u32;
                    }
                    *budget += *block;
                    *injected_elems += *block;
                }
                let check_hi = *check_hi;
                let within_budget = x.iters < *budget;
                // Selective suppression: stop-check instructions always
                // run scalar; body is covered while within budget.
                let next = machine.pc();
                let next_in_check = (x.lo..=check_hi).contains(&next);
                if (x.lo..=x.hi).contains(&next) {
                    if next_in_check || !within_budget {
                        ctl.end_coverage();
                    } else {
                        ctl.begin_coverage();
                    }
                }
            }
            ExecKind::Conditional {
                template,
                window_arms,
                window_fill,
                rec,
                injected_elems,
            } => {
                let lanes = template.lanes();
                rec.record(ev, machine);
                if boundary {
                    self.stats.array_map_accesses += 1;
                    self.stats.detection_cycles += self.config.array_map_latency as u64;
                    let (xid, map_lat, cycle) =
                        (x.id, self.config.array_map_latency, ctl.cycles());
                    self.tracer.emit(|| Event::CacheAccess {
                        cache: CacheKind::ArrayMap,
                        outcome: CacheOutcome::Hit,
                        loop_id: xid,
                        count: 1,
                        dsa_cycles: map_lat as u64,
                        cycle,
                    });
                    let idx_reg = rec.last_cmp_reg();
                    let r = std::mem::replace(rec, IterationRecorder::new(x.lo, x.hi));
                    let p = r.finish(idx_reg);
                    let path = p.path;
                    // First time this arm appears within the current
                    // window: remember its stream bases, rewound to the
                    // window start.
                    if let std::collections::btree_map::Entry::Vacant(slot) =
                        window_arms.entry(path)
                    {
                        let arm = template
                            .arms
                            .iter()
                            .find(|a| a.path == path)
                            .cloned()
                            .unwrap_or_else(|| ArmTemplate {
                                path,
                                streams: p
                                    .accesses
                                    .iter()
                                    .map(|s| StreamTemplate {
                                        pc: s.pc,
                                        occ: s.occ,
                                        is_write: s.is_write,
                                        bytes: s.bytes,
                                        gap: template.elem_bytes as i64,
                                    })
                                    .collect(),
                                ops: OpMix {
                                    alu: p.body.vec_alu,
                                    mul: p.body.vec_mul,
                                    shift: p.body.vec_shift,
                                },
                            });
                        let fill = *window_fill as i64;
                        let bases: Vec<(StreamTemplate, u32)> = arm
                            .streams
                            .iter()
                            .filter_map(|s| {
                                p.find(s.pc, s.occ)
                                    .map(|obs| (*s, (obs.addr as i64 - s.gap * fill) as u32))
                            })
                            .collect();
                        if bases.len() == arm.streams.len() {
                            slot.insert(bases);
                        }
                    }
                    *window_fill += 1;
                    // Window complete: vectorize every accessed condition
                    // over it and let the Array Maps select lanes.
                    if *window_fill == lanes {
                        let arms: Vec<(u64, Vec<(StreamTemplate, u32)>)> =
                            std::mem::take(window_arms).into_iter().collect();
                        for (path, bases) in arms {
                            let ops = template
                                .arms
                                .iter()
                                .find(|a| a.path == path)
                                .map(|a| a.ops)
                                .unwrap_or(OpMix { alu: 1, mul: 0, shift: 0 });
                            let plan = plan::build_plan(
                                template,
                                &bases,
                                ops,
                                lanes,
                                self.config.leftover,
                            );
                            self.stats.injected_ops += plan.ops.len() as u64;
                            *injected_elems += lanes;
                            ctl.inject(&plan.ops);
                        }
                        *window_fill = 0;
                        self.stats.stage_speculative += 1;
                        self.stats.detection_cycles += self.config.select_latency as u64;
                        let (xid, sel_lat, cycle) =
                            (x.id, self.config.select_latency, ctl.cycles());
                        self.tracer.emit(|| Event::StageActivated {
                            stage: Stage::SpeculativeExecution,
                            loop_id: xid,
                            dsa_cycles: sel_lat as u64,
                            cycle,
                        });
                    }
                }
            }
        }

        // Loop exit?
        let next = machine.pc();
        let in_body = (x.lo..=x.hi).contains(&next);
        let in_callee = x.callee.is_some_and(|(lo, hi)| (lo..=hi).contains(&next))
            || x.call_depth > 0;
        if !in_body && !in_callee {
            let iters = x.iters;
            let xid = x.id;
            let cycle = ctl.cycles();
            let sel_lat = self.config.select_latency as u64;
            match &x.kind {
                ExecKind::Sentinel { injected_elems, .. } => {
                    self.stats.stage_speculative += 1;
                    self.stats.detection_cycles += sel_lat;
                    self.stats.discarded_lanes +=
                        (*injected_elems as u64).saturating_sub(iters as u64);
                    let injected = *injected_elems as u64;
                    self.tracer.emit(|| Event::StageActivated {
                        stage: Stage::SpeculativeExecution,
                        loop_id: xid,
                        dsa_cycles: sel_lat,
                        cycle,
                    });
                    self.tracer.emit(|| Event::SpeculationResolved {
                        loop_id: xid,
                        kind: SpecKind::Sentinel,
                        injected,
                        used: iters as u64,
                        discarded: injected.saturating_sub(iters as u64),
                        cycle,
                    });
                    // Update the stored speculative range (three rules of
                    // §4.6.5: always track the latest actual range).
                    if let Some(t) = self.cache.template_mut(xid) {
                        t.spec_range = iters.max(1);
                        // Fault injection: a lying trip predictor stores
                        // a wildly inflated range; `hit_execute` must
                        // catch it before the next instance launches.
                        if self.faults.as_mut().is_some_and(|f| f.fire(FaultSite::LieSentinelTrip))
                        {
                            self.stats.faults_injected += 1;
                            t.spec_range = MAX_SPEC_RANGE + 1 + iters;
                            self.tracer.emit(|| Event::FaultInjected {
                                site: FaultSite::LieSentinelTrip.name(),
                                cycle,
                            });
                        }
                    }
                }
                ExecKind::Conditional { injected_elems, .. } => {
                    self.stats.stage_speculative += 1;
                    self.stats.detection_cycles += sel_lat;
                    self.stats.discarded_lanes +=
                        (*injected_elems as u64).saturating_sub(iters as u64);
                    let injected = *injected_elems as u64;
                    self.tracer.emit(|| Event::StageActivated {
                        stage: Stage::SpeculativeExecution,
                        loop_id: xid,
                        dsa_cycles: sel_lat,
                        cycle,
                    });
                    self.tracer.emit(|| Event::SpeculationResolved {
                        loop_id: xid,
                        kind: SpecKind::Conditional,
                        injected,
                        used: iters as u64,
                        discarded: injected.saturating_sub(iters as u64),
                        cycle,
                    });
                }
                ExecKind::Plain { .. } => {}
            }
            self.stats.covered_iterations += iters as u64;
            self.tracer.emit(|| Event::LoopFinished { loop_id: xid, iters, cycle });
            // Fault injection: skip the rollback flush, leaving coverage
            // suppression stuck on. `probe`'s stale-coverage self-check
            // must recover it on the next commit.
            if self.faults.as_mut().is_some_and(|f| f.fire(FaultSite::SkipRollbackFlush)) {
                self.stats.faults_injected += 1;
                self.tracer.emit(|| Event::FaultInjected {
                    site: FaultSite::SkipRollbackFlush.name(),
                    cycle,
                });
            } else {
                ctl.end_coverage();
                ctl.stall(self.config.resync_latency as u64);
            }
            self.mode = Mode::Probing;
        }
        Ok(())
    }
}

/// Whether the event is a loop-closing candidate: a plain backward taken
/// branch. Calls and returns also regress the PC but are recognised by
/// their instruction kind and never start a loop analysis.
fn is_loop_branch(ev: &TraceEvent) -> bool {
    matches!(ev.instr, Instr::B { .. }) && ev.is_backward_taken_branch()
}

impl CommitHook for Dsa {
    fn on_commit(&mut self, ev: &TraceEvent, machine: &Machine, ctl: &mut SimControl<'_>) {
        let step = match &self.mode {
            Mode::Probing => {
                self.probe(ev, ctl);
                Ok(())
            }
            Mode::Analyzing(_) => self.analyze(ev, machine, ctl).map(|redispatch| {
                if redispatch {
                    // Nest abandonment: re-dispatch from probing so the
                    // inner loop's boundary is not lost.
                    self.probe(ev, ctl);
                }
            }),
            Mode::Executing(_) => self.execute(ev, machine, ctl),
            // A poisoned DSA has detached itself; the scalar core is in
            // full control and the run completes with correct results.
            Mode::Poisoned => Ok(()),
        };
        if let Err(err) = step {
            self.poison(err, ctl);
        }
    }
}
