//! Per-iteration profiling: what the Data Collection stage extracts from
//! the committed instruction stream.

use std::collections::{HashMap, HashSet};

use dsa_cpu::{Machine, TraceEvent};
use dsa_isa::{AluOp, Instr, Operand, Reg};

/// One data-memory access stream observation: the `occ`-th access by the
/// instruction at `pc` within one iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamInfo {
    /// PC of the load/store instruction.
    pub pc: u32,
    /// Occurrence index within the iteration (for instructions executed
    /// more than once, e.g. inside a called function).
    pub occ: u8,
    /// Whether this is a store.
    pub is_write: bool,
    /// Access width in bytes.
    pub bytes: u8,
    /// The address observed this iteration.
    pub addr: u32,
}

/// The closing compare of an iteration, with operand *values* (the
/// hardware reads the register file; the trace-level model reads the
/// machine state).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CmpObs {
    /// PC of the compare.
    pub pc: u32,
    /// Left operand value.
    pub lhs: i64,
    /// Right operand value.
    pub rhs: i64,
    /// Whether the right operand was an immediate (static range) or a
    /// register (dynamic range).
    pub rhs_is_imm: bool,
}

/// Classified operation profile of one loop iteration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BodyProfile {
    /// Sequential loads per iteration.
    pub loads: u32,
    /// Sequential stores per iteration.
    pub stores: u32,
    /// Vectorizable non-multiply value operations.
    pub vec_alu: u32,
    /// Vectorizable multiplies.
    pub vec_mul: u32,
    /// Vectorizable right shifts.
    pub vec_shift: u32,
    /// Loop overhead that disappears in vector code (index/pointer
    /// updates, compares, branches, invariant moves).
    pub droppable: u32,
    /// Operations the NEON engine cannot perform (indirect addressing,
    /// unsupported ALU forms).
    pub nonvec: u32,
    /// Element width in bytes; `None` when accesses have mixed widths.
    pub elem_bytes: Option<u8>,
    /// Whether the value operations are floating point.
    pub float: bool,
}

impl BodyProfile {
    /// Total vectorizable value operations.
    pub fn vec_ops(&self) -> u32 {
        self.vec_alu + self.vec_mul + self.vec_shift
    }

    /// Whether the body can be expressed as NEON work.
    pub fn is_vectorizable(&self) -> bool {
        self.nonvec == 0 && self.elem_bytes.is_some() && self.stores + self.loads > 0
    }
}

/// Everything the DSA learned from one loop iteration.
#[derive(Debug, Clone)]
pub struct IterationProfile {
    /// Ordered access observations.
    pub accesses: Vec<StreamInfo>,
    /// The last compare before the closing branch.
    pub closing_cmp: Option<CmpObs>,
    /// Hash of the conditional-branch path taken inside the body
    /// (identifies which condition executed).
    pub path: u64,
    /// Number of in-body conditional branches observed.
    pub cond_branches: u32,
    /// PCs executed inside the loop range.
    pub pcs: HashSet<u32>,
    /// Classified operation profile.
    pub body: BodyProfile,
    /// Whether the body called a function.
    pub has_call: bool,
    /// PC range of called code outside the loop body, if any.
    pub callee_range: Option<(u32, u32)>,
    /// PC of a conditional forward branch leaving the loop (sentinel
    /// stop-check), if one exists.
    pub exit_check_pc: Option<u32>,
    /// PCs of non-droppable instructions (value operations, indirect
    /// accesses) — used by the nest-fusion check to verify the outer
    /// body is pure loop overhead.
    pub value_op_pcs: Vec<u32>,
    /// PCs of the in-body conditional branches counted in
    /// [`IterationProfile::cond_branches`].
    pub cond_branch_pcs: Vec<u32>,
    /// Committed instructions in the iteration.
    pub n_events: u32,
}

impl IterationProfile {
    /// Finds the observation matching `(pc, occ)`.
    pub fn find(&self, pc: u32, occ: u8) -> Option<&StreamInfo> {
        self.accesses.iter().find(|s| s.pc == pc && s.occ == occ)
    }

    /// The class of body this iteration suggests.
    pub fn body_class(&self) -> BodyClass {
        if self.cond_branches > 0 {
            BodyClass::Conditional
        } else if self.has_call {
            BodyClass::Function
        } else {
            BodyClass::Straight
        }
    }
}

/// Coarse body shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BodyClass {
    /// Straight-line body.
    Straight,
    /// Contains conditional code.
    Conditional,
    /// Contains a function call.
    Function,
}

/// Records one iteration of the loop `[lo..=hi]` from commit events.
#[derive(Debug)]
pub struct IterationRecorder {
    lo: u32,
    hi: u32,
    accesses: Vec<StreamInfo>,
    occ: HashMap<u32, u8>,
    instrs: Vec<(u32, Instr)>,
    base_regs: HashSet<Reg>,
    last_cmp: Option<(CmpObs, Option<Reg>)>,
    path: u64,
    cond_branches: u32,
    cond_branch_pcs: Vec<u32>,
    /// Register moves observed (`rd <- rm`), for the transitive
    /// address-register closure.
    movs: Vec<(Reg, Reg)>,
    pcs: HashSet<u32>,
    has_call: bool,
    callee_range: Option<(u32, u32)>,
    exit_check_pc: Option<u32>,
    n_events: u32,
}

impl IterationRecorder {
    /// Creates a recorder for the loop body `[lo..=hi]`.
    pub fn new(lo: u32, hi: u32) -> IterationRecorder {
        IterationRecorder {
            lo,
            hi,
            accesses: Vec::new(),
            occ: HashMap::new(),
            instrs: Vec::new(),
            base_regs: HashSet::new(),
            last_cmp: None,
            path: 0,
            cond_branches: 0,
            cond_branch_pcs: Vec::new(),
            movs: Vec::new(),
            pcs: HashSet::new(),
            has_call: false,
            callee_range: None,
            exit_check_pc: None,
            n_events: 0,
        }
    }

    fn in_range(&self, pc: u32) -> bool {
        (self.lo..=self.hi).contains(&pc)
    }

    /// Feeds one committed event (the closing backward branch itself
    /// should *not* be fed; it delimits iterations).
    pub fn record(&mut self, ev: &TraceEvent, machine: &Machine) {
        self.n_events += 1;
        if self.in_range(ev.pc) {
            self.pcs.insert(ev.pc);
        } else if let Some((lo, hi)) = &mut self.callee_range {
            *lo = (*lo).min(ev.pc);
            *hi = (*hi).max(ev.pc);
        } else {
            self.callee_range = Some((ev.pc, ev.pc));
        }
        self.instrs.push((ev.pc, ev.instr));

        if let Some(acc) = ev.read.or(ev.write) {
            let occ = self.occ.entry(ev.pc).or_insert(0);
            self.accesses.push(StreamInfo {
                pc: ev.pc,
                occ: *occ,
                is_write: ev.write.is_some(),
                bytes: acc.bytes,
                addr: acc.addr,
            });
            *occ += 1;
            match ev.instr {
                Instr::Ldr { rn, .. }
                | Instr::Str { rn, .. }
                | Instr::LdrReg { rn, .. }
                | Instr::StrReg { rn, .. } => {
                    self.base_regs.insert(rn);
                }
                _ => {}
            }
        }

        match ev.instr {
            Instr::Mov { rd, rm } => self.movs.push((rd, rm)),
            Instr::Cmp { rn, src2 } => {
                let lhs = machine.reg(rn) as i32 as i64;
                let (rhs, rhs_is_imm) = match src2 {
                    Operand::Reg(rm) => (machine.reg(rm) as i32 as i64, false),
                    Operand::Imm(v) => (v as i64, true),
                };
                self.last_cmp =
                    Some((CmpObs { pc: ev.pc, lhs, rhs, rhs_is_imm }, Some(rn)));
            }
            Instr::Bl { .. } => self.has_call = true,
            Instr::B { cond, .. } if cond != dsa_isa::Cond::Al => {
                if let Some(b) = ev.branch {
                    if self.in_range(ev.pc) && !self.in_range(b.target) {
                        // Conditional branch leaving the loop: the
                        // sentinel stop check (or a guarded early exit).
                        self.exit_check_pc = Some(ev.pc);
                    } else if b.target > ev.pc {
                        // In-body conditional control flow: both the
                        // direction and the branch PC identify the arm.
                        self.cond_branches += 1;
                        self.cond_branch_pcs.push(ev.pc);
                        self.path = self
                            .path
                            .wrapping_mul(0x0000_0100_0000_01b3)
                            .wrapping_add(((ev.pc as u64) << 1) | b.taken as u64);
                    }
                }
            }
            _ => {}
        }
    }

    /// Finalises the iteration and classifies its operations.
    pub fn finish(self, index_reg: Option<Reg>) -> IterationProfile {
        let mut body = BodyProfile::default();
        let mut widths: HashSet<u8> = HashSet::new();
        for s in &self.accesses {
            widths.insert(s.bytes);
            if s.is_write {
                body.stores += 1;
            } else {
                body.loads += 1;
            }
        }
        body.elem_bytes = match widths.len() {
            0 => None,
            1 => widths.iter().next().copied(),
            _ => None, // inconsistent member lengths (Table 1, line 9)
        };

        let overhead_regs: HashSet<Reg> = {
            let mut set = self.base_regs.clone();
            if let Some(r) = index_reg {
                set.insert(r);
            }
            if let Some((_, Some(r))) = self.last_cmp {
                set.insert(r);
            }
            // Transitive closure over moves: a register copied into an
            // address register is itself address arithmetic (e.g. an
            // outer loop's row pointer feeding the inner loop's base).
            loop {
                let before = set.len();
                for &(rd, rm) in &self.movs {
                    if set.contains(&rd) {
                        set.insert(rm);
                    }
                }
                if set.len() == before {
                    break;
                }
            }
            set
        };

        let mut value_op_pcs = Vec::new();
        for (pc, instr) in &self.instrs {
            match instr {
                Instr::Alu { op, rd, .. } => {
                    if overhead_regs.contains(rd) {
                        body.droppable += 1;
                        continue;
                    }
                    value_op_pcs.push(*pc);
                    match op {
                        AluOp::Add | AluOp::Sub | AluOp::Rsb | AluOp::And | AluOp::Orr
                        | AluOp::Eor => body.vec_alu += 1,
                        AluOp::Mul => body.vec_mul += 1,
                        AluOp::FAdd | AluOp::FSub => {
                            body.vec_alu += 1;
                            body.float = true;
                        }
                        AluOp::FMul => {
                            body.vec_mul += 1;
                            body.float = true;
                        }
                        AluOp::Lsr | AluOp::Asr => body.vec_shift += 1,
                        AluOp::Lsl => body.nonvec += 1,
                    }
                }
                Instr::LdrReg { .. } | Instr::StrReg { .. } => {
                    value_op_pcs.push(*pc);
                    body.nonvec += 1;
                }
                Instr::Ldr { .. } | Instr::Str { .. } => {} // counted as streams
                Instr::MovImm { .. }
                | Instr::MovTop { .. }
                | Instr::Mov { .. }
                | Instr::Cmp { .. }
                | Instr::B { .. }
                | Instr::Bl { .. }
                | Instr::BxLr
                | Instr::Nop => body.droppable += 1,
                Instr::Halt => body.nonvec += 1,
                // Vector instructions in the watched stream mean the code
                // is already vectorized; the DSA leaves it alone.
                _ => body.nonvec += 1,
            }
        }

        IterationProfile {
            accesses: self.accesses,
            closing_cmp: self.last_cmp.map(|(c, _)| c),
            path: self.path,
            cond_branches: self.cond_branches,
            pcs: self.pcs,
            body,
            has_call: self.has_call,
            callee_range: self.callee_range,
            exit_check_pc: self.exit_check_pc,
            value_op_pcs,
            cond_branch_pcs: self.cond_branch_pcs,
            n_events: self.n_events,
        }
    }

    /// The register compared by the most recent compare (the induction
    /// candidate), if any.
    pub fn last_cmp_reg(&self) -> Option<Reg> {
        self.last_cmp.and_then(|(_, r)| r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsa_cpu::{BranchOutcome, MemAccess};
    use dsa_isa::{AddrMode, Cond, MemSize};

    fn machine() -> Machine {
        Machine::new()
    }

    fn ld(pc: u32, rd: Reg, rn: Reg, addr: u32) -> TraceEvent {
        let mut ev = TraceEvent::simple(
            pc,
            Instr::Ldr { rd, rn, mode: AddrMode::Offset(0), size: MemSize::W },
        );
        ev.read = Some(MemAccess { addr, bytes: 4 });
        ev
    }

    fn st(pc: u32, rs: Reg, rn: Reg, addr: u32) -> TraceEvent {
        let mut ev = TraceEvent::simple(
            pc,
            Instr::Str { rs, rn, mode: AddrMode::Offset(0), size: MemSize::W },
        );
        ev.write = Some(MemAccess { addr, bytes: 4 });
        ev
    }

    fn alu(pc: u32, op: AluOp, rd: Reg) -> TraceEvent {
        TraceEvent::simple(pc, Instr::Alu { op, rd, rn: Reg::R6, src2: Operand::Reg(Reg::R7) })
    }

    #[test]
    fn straight_line_map_iteration() {
        let m = machine();
        let mut r = IterationRecorder::new(10, 20);
        r.record(&ld(10, Reg::R6, Reg::R2, 0x100), &m);
        r.record(&ld(11, Reg::R7, Reg::R3, 0x200), &m);
        r.record(&alu(12, AluOp::Add, Reg::R6), &m);
        r.record(&st(13, Reg::R6, Reg::R4, 0x300), &m);
        r.record(&alu(14, AluOp::Add, Reg::R2), &m); // pointer update
        r.record(&alu(15, AluOp::Add, Reg::R0), &m); // index update (cmp reg)
        r.record(
            &TraceEvent::simple(16, Instr::Cmp { rn: Reg::R0, src2: Operand::Imm(40) }),
            &m,
        );
        let p = r.finish(Some(Reg::R0));
        assert_eq!(p.body.loads, 2);
        assert_eq!(p.body.stores, 1);
        assert_eq!(p.body.vec_alu, 1, "one real add");
        assert_eq!(p.body.droppable, 3, "two pointer/index adds + cmp");
        assert_eq!(p.body.nonvec, 0);
        assert!(p.body.is_vectorizable());
        assert_eq!(p.body.elem_bytes, Some(4));
        assert_eq!(p.body_class(), BodyClass::Straight);
        let cmp = p.closing_cmp.expect("cmp recorded");
        assert!(cmp.rhs_is_imm);
        assert_eq!(cmp.rhs, 40);
    }

    #[test]
    fn conditional_path_hash_differs_by_direction() {
        let m = machine();
        let b = |taken: bool| {
            let mut ev = TraceEvent::simple(12, Instr::B { cond: Cond::Ge, offset: 3 });
            ev.branch = Some(BranchOutcome { target: 15, taken });
            ev
        };
        let mut r1 = IterationRecorder::new(10, 20);
        r1.record(&b(true), &m);
        let mut r2 = IterationRecorder::new(10, 20);
        r2.record(&b(false), &m);
        let p1 = r1.finish(None);
        let p2 = r2.finish(None);
        assert_ne!(p1.path, p2.path);
        assert_eq!(p1.cond_branches, 1);
        assert_eq!(p1.body_class(), BodyClass::Conditional);
    }

    #[test]
    fn sentinel_exit_branch_detected() {
        let m = machine();
        let mut r = IterationRecorder::new(10, 20);
        let mut ev = TraceEvent::simple(11, Instr::B { cond: Cond::Eq, offset: 30 });
        ev.branch = Some(BranchOutcome { target: 41, taken: false });
        r.record(&ev, &m);
        let p = r.finish(None);
        assert_eq!(p.exit_check_pc, Some(11));
        // A not-taken exit branch is not conditional body code.
        assert_eq!(p.cond_branches, 0, "exit check is not an arm");
    }

    #[test]
    fn mixed_widths_rejected() {
        let m = machine();
        let mut r = IterationRecorder::new(0, 10);
        r.record(&ld(0, Reg::R6, Reg::R2, 0x100), &m);
        let mut byte_ld = TraceEvent::simple(
            1,
            Instr::Ldr { rd: Reg::R7, rn: Reg::R3, mode: AddrMode::Offset(0), size: MemSize::B },
        );
        byte_ld.read = Some(MemAccess { addr: 0x200, bytes: 1 });
        r.record(&byte_ld, &m);
        let p = r.finish(None);
        assert_eq!(p.body.elem_bytes, None);
        assert!(!p.body.is_vectorizable());
    }

    #[test]
    fn function_call_and_callee_range() {
        let m = machine();
        let mut r = IterationRecorder::new(10, 20);
        let mut bl = TraceEvent::simple(12, Instr::Bl { offset: 100 });
        bl.branch = Some(BranchOutcome { target: 112, taken: true });
        r.record(&bl, &m);
        r.record(&alu(112, AluOp::Mul, Reg::R8), &m);
        let mut ret = TraceEvent::simple(113, Instr::BxLr);
        ret.branch = Some(BranchOutcome { target: 13, taken: true });
        r.record(&ret, &m);
        let p = r.finish(None);
        assert!(p.has_call);
        assert_eq!(p.callee_range, Some((112, 113)));
        assert_eq!(p.body.vec_mul, 1);
        assert_eq!(p.body_class(), BodyClass::Function);
    }

    #[test]
    fn occurrence_numbering_for_repeated_pcs() {
        let m = machine();
        let mut r = IterationRecorder::new(0, 10);
        r.record(&ld(3, Reg::R6, Reg::R2, 0x100), &m);
        r.record(&ld(3, Reg::R6, Reg::R2, 0x104), &m);
        let p = r.finish(None);
        assert_eq!(p.find(3, 0).map(|s| s.addr), Some(0x100));
        assert_eq!(p.find(3, 1).map(|s| s.addr), Some(0x104));
        assert!(p.find(3, 2).is_none());
    }
}
