//! DSA statistics and the loop-type census.

use std::collections::BTreeMap;
use std::fmt;

/// Classification of one static loop, as determined at runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LoopClass {
    /// Fixed trip count, straight-line body.
    Count,
    /// Body contains a function call.
    Function,
    /// Outer loop of a nest (inner loops classified separately).
    Nest,
    /// Body contains conditional code.
    Conditional,
    /// Trip computed at runtime before the loop.
    DynamicRange,
    /// Stop condition computed inside the loop.
    Sentinel,
    /// Vectorizable only in chunks (bounded cross-iteration dependency).
    Partial,
    /// Not vectorizable (true dependency, unsupported ops, capacity).
    NonVectorizable,
}

impl LoopClass {
    /// Stable kebab-case name — shared by [`fmt::Display`] and the
    /// telemetry event stream, so trace consumers and table renderers
    /// agree on the vocabulary.
    pub fn name(self) -> &'static str {
        match self {
            LoopClass::Count => "count",
            LoopClass::Function => "function",
            LoopClass::Nest => "nest",
            LoopClass::Conditional => "conditional",
            LoopClass::DynamicRange => "dynamic-range",
            LoopClass::Sentinel => "sentinel",
            LoopClass::Partial => "partial",
            LoopClass::NonVectorizable => "non-vectorizable",
        }
    }
}

impl fmt::Display for LoopClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Census of the distinct loops observed in a run, by class — the data
/// behind Figure 7 of the DATE article ("Percentage of Loop Types in the
/// Selected Applications").
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LoopCensus {
    by_class: BTreeMap<LoopClass, u32>,
}

impl LoopCensus {
    /// Records one loop of the given class.
    pub fn record(&mut self, class: LoopClass) {
        *self.by_class.entry(class).or_insert(0) += 1;
    }

    /// Number of distinct loops of `class`.
    pub fn count(&self, class: LoopClass) -> u32 {
        self.by_class.get(&class).copied().unwrap_or(0)
    }

    /// Total distinct loops.
    pub fn total(&self) -> u32 {
        self.by_class.values().sum()
    }

    /// Percentage of loops of `class` (0 when no loops were seen).
    pub fn percentage(&self, class: LoopClass) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            100.0 * self.count(class) as f64 / self.total() as f64
        }
    }

    /// Iterates over `(class, count)` pairs in a stable order.
    pub fn iter(&self) -> impl Iterator<Item = (LoopClass, u32)> + '_ {
        self.by_class.iter().map(|(&c, &n)| (c, n))
    }
}

/// Counters accumulated by the [`crate::Dsa`] engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DsaStats {
    /// Dynamic loop entries observed (backward-branch loop detections).
    pub loops_detected: u64,
    /// Loop instances whose remaining iterations ran on the NEON engine.
    pub loops_vectorized: u64,
    /// DSA-cache hits (analysis skipped).
    pub dsa_cache_hits: u64,
    /// DSA-cache misses (full analysis performed).
    pub dsa_cache_misses: u64,
    /// Iterations whose scalar timing was replaced by vector execution.
    pub covered_iterations: u64,
    /// Vector/leftover operations injected into the Issue stage.
    pub injected_ops: u64,
    /// DSA-side cycles spent in detection (runs in parallel with the
    /// core; reported as the paper's "DSA latency", never added to the
    /// critical path).
    pub detection_cycles: u64,
    /// Loop Detection stage activations.
    pub stage_loop_detection: u64,
    /// Data Collection stage activations.
    pub stage_data_collection: u64,
    /// Dependency Analysis stage activations.
    pub stage_dependency_analysis: u64,
    /// Store ID/Execution stage activations.
    pub stage_store_id_execution: u64,
    /// Mapping stage activations (conditional loops).
    pub stage_mapping: u64,
    /// Speculative Execution stage activations.
    pub stage_speculative: u64,
    /// Verification-Cache accesses.
    pub vcache_accesses: u64,
    /// Array-Map accesses.
    pub array_map_accesses: u64,
    /// CIDP evaluations.
    pub cidp_evaluations: u64,
    /// Partial-vectorization chunks executed.
    pub partial_chunks: u64,
    /// Speculative vector work that was discarded (lanes computed past a
    /// sentinel exit or for unselected conditional arms).
    pub discarded_lanes: u64,
    /// Faults injected by an armed [`FaultPlan`](crate::FaultPlan).
    pub faults_injected: u64,
    /// Graceful degradations: internal inconsistencies the engine
    /// detected and answered by rolling back to scalar execution
    /// (includes every poison event).
    pub degradations: u64,
    /// Engine poisonings: impossible state-machine transitions
    /// ([`EngineError`](crate::EngineError)) after which the DSA detached
    /// itself and the run completed scalar-only.
    pub poison_events: u64,
}

impl DsaStats {
    /// Detection latency as a fraction of `total_cycles` (the paper's
    /// Table "DSA Detection Latency").
    pub fn detection_fraction(&self, total_cycles: u64) -> f64 {
        if total_cycles == 0 {
            0.0
        } else {
            self.detection_cycles as f64 / total_cycles as f64
        }
    }

    /// The lower bound on [`DsaStats::detection_cycles`] implied by the
    /// activity counters under `cfg`'s latencies: every DSA-cache miss,
    /// Verification-Cache access, CIDP evaluation, Array-Map access,
    /// speculative select and partial-chunk re-verification carries a
    /// mandatory charge. Cache hits and template stores add on top, so
    /// a consistent engine always reports
    /// `detection_cycles >= structural_cycles_floor(cfg)` —
    /// [`crate::Dsa::stats`] checks this with a `debug_assert`.
    pub fn structural_cycles_floor(&self, cfg: &crate::DsaConfig) -> u64 {
        self.dsa_cache_misses * cfg.dsa_cache_latency as u64
            + self.vcache_accesses * cfg.vcache_latency as u64
            + self.cidp_evaluations * cfg.cidp_latency as u64
            + self.array_map_accesses * cfg.array_map_latency as u64
            + self.stage_speculative * cfg.select_latency as u64
            + self.partial_chunks * cfg.partial_chunk_latency as u64
    }

    /// Total stage activations across the six-stage machine.
    pub fn stage_activations(&self) -> u64 {
        self.stage_loop_detection
            + self.stage_data_collection
            + self.stage_dependency_analysis
            + self.stage_store_id_execution
            + self.stage_mapping
            + self.stage_speculative
    }
}

impl fmt::Display for DsaStats {
    /// One-line run summary (used by `all_experiments`' stderr report).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "loops {}d/{}v, {} iters covered, {} ops injected, \
             cache {}h/{}m, dsa {} cyc over {} activations, \
             {} degraded ({} poisoned), {} faults",
            self.loops_detected,
            self.loops_vectorized,
            self.covered_iterations,
            self.injected_ops,
            self.dsa_cache_hits,
            self.dsa_cache_misses,
            self.detection_cycles,
            self.stage_activations(),
            self.degradations,
            self.poison_events,
            self.faults_injected,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn census_percentages() {
        let mut c = LoopCensus::default();
        c.record(LoopClass::Count);
        c.record(LoopClass::Count);
        c.record(LoopClass::Sentinel);
        c.record(LoopClass::NonVectorizable);
        assert_eq!(c.total(), 4);
        assert_eq!(c.count(LoopClass::Count), 2);
        assert_eq!(c.percentage(LoopClass::Count), 50.0);
        assert_eq!(c.percentage(LoopClass::DynamicRange), 0.0);
        assert_eq!(c.iter().count(), 3);
    }

    #[test]
    fn detection_fraction_bounds() {
        let s = DsaStats { detection_cycles: 15, ..DsaStats::default() };
        assert_eq!(s.detection_fraction(1000), 0.015);
        assert_eq!(s.detection_fraction(0), 0.0);
    }

    #[test]
    fn class_display() {
        assert_eq!(LoopClass::DynamicRange.to_string(), "dynamic-range");
        assert_eq!(LoopClass::DynamicRange.name(), "dynamic-range");
    }

    #[test]
    fn structural_floor_counts_mandatory_charges() {
        let cfg = crate::DsaConfig::default();
        let s = DsaStats {
            dsa_cache_misses: 3,
            vcache_accesses: 10,
            cidp_evaluations: 2,
            array_map_accesses: 5,
            stage_speculative: 4,
            partial_chunks: 1,
            ..DsaStats::default()
        };
        let floor = s.structural_cycles_floor(&cfg);
        assert_eq!(
            floor,
            3 * cfg.dsa_cache_latency as u64
                + 10 * cfg.vcache_latency as u64
                + 2 * cfg.cidp_latency as u64
                + 5 * cfg.array_map_latency as u64
                + 4 * cfg.select_latency as u64
                + cfg.partial_chunk_latency as u64
        );
        // A consistent stats block satisfies the floor; a cycle count
        // below it is what the engine's debug_assert rejects.
        let consistent = DsaStats { detection_cycles: floor, ..s };
        assert!(consistent.detection_cycles >= consistent.structural_cycles_floor(&cfg));
        assert_eq!(DsaStats::default().structural_cycles_floor(&cfg), 0);
    }

    #[test]
    fn one_line_summary() {
        let s = DsaStats {
            loops_detected: 12,
            loops_vectorized: 9,
            covered_iterations: 3456,
            injected_ops: 789,
            stage_loop_detection: 12,
            stage_store_id_execution: 9,
            detection_cycles: 456,
            ..DsaStats::default()
        };
        let line = s.to_string();
        assert!(line.contains("12d/9v"));
        assert!(line.contains("3456 iters covered"));
        assert!(line.contains("over 21 activations"));
        assert!(!line.contains('\n'));
    }
}
