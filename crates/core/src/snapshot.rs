//! Crash-consistent snapshots of a DSA-attached simulation.
//!
//! The paper's warm-cache argument — verified loop templates persist in
//! the 8 KB DSA cache so re-entries skip analysis entirely — only holds
//! in a long-lived deployment if that state survives process death. A
//! [`Snapshot`] captures everything needed to resume: the CPU's full
//! architectural state ([`dsa_cpu::MachineState`]) and the DSA's
//! *persistent* state (cache entries with their templates and
//! speculative trip ranges, LRU clock, verification-table counters,
//! statistics, loop census). The DSA's *transient* detection mode is
//! deliberately not captured: the engine restarts in Probing, so a
//! crash mid-analysis loses at most the in-flight detection — never
//! architectural state, which the scalar core owns (the safety argument
//! of §4; [`crate::oracle::DifferentialOracle::check_resume`] proves a
//! resumed run bit-identical to an uninterrupted one).
//!
//! # Wire format (version 1)
//!
//! | offset | size | field |
//! |--------|------|-------|
//! | 0      | 8    | magic `"DSASNAP\0"` |
//! | 8      | 2    | version (LE u16) |
//! | 10     | 8    | payload length (LE u64) |
//! | 18     | n    | payload (config fingerprint, machine, engine) |
//! | 18 + n | 4    | CRC-32 (IEEE) over bytes `0 .. 18 + n` |
//!
//! All integers are little-endian. Collections are length-prefixed and
//! written in sorted key order, so `snapshot → restore → snapshot` is
//! byte-identical. The trailing CRC covers the header too; because
//! CRC-32 detects every single-bit error, any torn or bit-flipped image
//! is rejected with a typed [`SnapshotError`] — callers degrade to a
//! cold start instead of panicking ([`crate::Dsa::restore_or_cold`]).

use dsa_cpu::{Flags, Machine, MachineState};
use dsa_mem::PAGE_BYTES;

use crate::caches::CachedKind;
use crate::config::DsaConfig;
use crate::engine::Dsa;
use crate::plan::{ArmTemplate, LoopTemplate, OpMix, StreamTemplate};
use crate::stats::{DsaStats, LoopClass};

/// Magic prefix of every snapshot image.
pub const MAGIC: [u8; 8] = *b"DSASNAP\0";
/// Current schema version.
pub const VERSION: u16 = 1;
const HEADER_LEN: usize = 8 + 2 + 8;

/// Why a snapshot image was rejected. `Copy` so it can ride inside
/// `RunError`-style enums without allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotError {
    /// The image is shorter than its header + declared payload + CRC.
    Truncated,
    /// The magic prefix is wrong (not a snapshot, or a torn header).
    BadMagic,
    /// The schema version is not one this build can read.
    UnsupportedVersion(u16),
    /// The CRC-32 trailer does not match the image contents.
    ChecksumMismatch,
    /// The payload violates the schema (bad tag, bad length, trailing
    /// bytes); the contained string names the offending field.
    Malformed(&'static str),
    /// The image was captured under a different DSA configuration than
    /// the one it is being restored into.
    ConfigMismatch,
}

impl SnapshotError {
    /// Stable kebab-case name (telemetry / report vocabulary).
    pub fn kind_name(self) -> &'static str {
        match self {
            SnapshotError::Truncated => "truncated",
            SnapshotError::BadMagic => "bad-magic",
            SnapshotError::UnsupportedVersion(_) => "unsupported-version",
            SnapshotError::ChecksumMismatch => "checksum-mismatch",
            SnapshotError::Malformed(_) => "malformed",
            SnapshotError::ConfigMismatch => "config-mismatch",
        }
    }
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Truncated => write!(f, "snapshot image is truncated"),
            SnapshotError::BadMagic => write!(f, "snapshot magic mismatch"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(f, "unsupported snapshot version {v} (this build reads {VERSION})")
            }
            SnapshotError::ChecksumMismatch => write!(f, "snapshot checksum mismatch"),
            SnapshotError::Malformed(what) => write!(f, "malformed snapshot field: {what}"),
            SnapshotError::ConfigMismatch => {
                write!(f, "snapshot was captured under a different DSA configuration")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

/// CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`). Bitwise —
/// snapshots are written once per pause, not per commit, so table-free
/// simplicity beats speed here. Detects all single-bit errors.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Fingerprint of the configuration a snapshot was captured under.
/// Fault injection and tracing are *neutralized* first: they alter
/// timing and observability, never persistent engine state, so a chaos
/// harness may capture under an armed fault plan and restore into a
/// clean config (or vice versa) without tripping [`SnapshotError::ConfigMismatch`].
pub(crate) fn config_fingerprint(config: &DsaConfig) -> u64 {
    let neutral = DsaConfig { faults: None, trace: false, ..*config };
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in format!("{neutral:?}").bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The DSA engine's persistent state, as exported by
/// `Dsa::engine_state` and re-imported by `Dsa::from_state`. All
/// collections are sorted by key.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineState {
    pub(crate) cache_capacity: u32,
    /// `(loop_id, kind, last_use)`, sorted by loop ID.
    pub(crate) cache_entries: Vec<(u32, CachedKind, u64)>,
    pub(crate) cache_tick: u64,
    pub(crate) cache_hits: u64,
    pub(crate) cache_misses: u64,
    pub(crate) cache_evictions: u64,
    pub(crate) vcache_capacity: u32,
    pub(crate) vcache_accesses: u64,
    /// Raw engine counters (cache hit/miss folding happens at read time).
    pub(crate) stats: DsaStats,
    /// `(loop_id, class)`, sorted by loop ID.
    pub(crate) census: Vec<(u32, LoopClass)>,
}

/// A captured snapshot: CPU architectural state + DSA persistent state,
/// plus the fingerprint of the configuration it was captured under.
#[derive(Debug, Clone)]
pub struct Snapshot {
    config_fingerprint: u64,
    machine: MachineState,
    engine: EngineState,
}

impl Snapshot {
    /// Captures the current state of a DSA-attached simulation. Valid at
    /// any commit boundary; [`dsa_cpu::Simulator::run_bounded`]'s
    /// `Paused` outcome is the intended pause point.
    pub fn capture(dsa: &Dsa, machine: &Machine) -> Snapshot {
        Snapshot {
            config_fingerprint: config_fingerprint(dsa.config()),
            machine: machine.capture(),
            engine: dsa.engine_state(),
        }
    }

    /// Rebuilds the machine half of the snapshot.
    pub fn restore_machine(&self) -> Machine {
        Machine::restore(&self.machine)
    }

    /// Rebuilds the engine half of the snapshot under `config`.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::ConfigMismatch`] if `config` (neutralized) does
    /// not fingerprint-match the capture-time configuration — restoring
    /// a cache image into, say, a differently-sized cache would silently
    /// break the capacity invariants.
    pub fn restore_engine(&self, config: DsaConfig) -> Result<Dsa, SnapshotError> {
        if config_fingerprint(&config) != self.config_fingerprint {
            return Err(SnapshotError::ConfigMismatch);
        }
        Ok(Dsa::from_state(config, self.engine.clone()))
    }

    /// Serializes to the versioned, CRC-guarded wire format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut payload = Vec::with_capacity(1024);
        enc_u64(&mut payload, self.config_fingerprint);
        enc_machine(&mut payload, &self.machine);
        enc_engine(&mut payload, &self.engine);

        let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + 4);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&payload);
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Parses and validates a wire image.
    ///
    /// # Errors
    ///
    /// Every way an image can be bad maps to a typed [`SnapshotError`]:
    /// too short → `Truncated`; wrong prefix → `BadMagic`; unknown
    /// version → `UnsupportedVersion`; any bit flip → `ChecksumMismatch`
    /// (CRC-32 detects all single-bit errors); schema violations and
    /// trailing bytes → `Malformed`. This function never panics.
    pub fn from_bytes(bytes: &[u8]) -> Result<Snapshot, SnapshotError> {
        if bytes.len() < HEADER_LEN + 4 {
            return Err(SnapshotError::Truncated);
        }
        if bytes[..8] != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = u16::from_le_bytes([bytes[8], bytes[9]]);
        if version != VERSION {
            return Err(SnapshotError::UnsupportedVersion(version));
        }
        let mut len_bytes = [0u8; 8];
        len_bytes.copy_from_slice(&bytes[10..18]);
        let payload_len = u64::from_le_bytes(len_bytes) as usize;
        let total = match HEADER_LEN.checked_add(payload_len).and_then(|n| n.checked_add(4)) {
            Some(t) => t,
            None => return Err(SnapshotError::Malformed("payload-length")),
        };
        if bytes.len() < total {
            return Err(SnapshotError::Truncated);
        }
        if bytes.len() > total {
            return Err(SnapshotError::Malformed("trailing-bytes"));
        }
        let stored_crc = u32::from_le_bytes([
            bytes[total - 4],
            bytes[total - 3],
            bytes[total - 2],
            bytes[total - 1],
        ]);
        if crc32(&bytes[..total - 4]) != stored_crc {
            return Err(SnapshotError::ChecksumMismatch);
        }

        let mut d = Dec { data: &bytes[HEADER_LEN..total - 4] };
        let config_fingerprint = d.u64()?;
        let machine = dec_machine(&mut d)?;
        let engine = dec_engine(&mut d)?;
        if !d.data.is_empty() {
            return Err(SnapshotError::Malformed("payload-trailing-bytes"));
        }
        Ok(Snapshot { config_fingerprint, machine, engine })
    }
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

fn enc_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

fn enc_bool(out: &mut Vec<u8>, v: bool) {
    out.push(v as u8);
}

fn enc_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn enc_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn enc_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn enc_opt_u32(out: &mut Vec<u8>, v: Option<u32>) {
    match v {
        None => enc_u8(out, 0),
        Some(x) => {
            enc_u8(out, 1);
            enc_u32(out, x);
        }
    }
}

fn enc_opt_i64(out: &mut Vec<u8>, v: Option<i64>) {
    match v {
        None => enc_u8(out, 0),
        Some(x) => {
            enc_u8(out, 1);
            enc_i64(out, x);
        }
    }
}

fn enc_opt_range(out: &mut Vec<u8>, v: Option<(u32, u32)>) {
    match v {
        None => enc_u8(out, 0),
        Some((lo, hi)) => {
            enc_u8(out, 1);
            enc_u32(out, lo);
            enc_u32(out, hi);
        }
    }
}

fn enc_machine(out: &mut Vec<u8>, m: &MachineState) {
    for r in m.regs {
        enc_u32(out, r);
    }
    for q in m.qregs {
        out.extend_from_slice(&q);
    }
    enc_u8(out, m.flags.to_bits());
    enc_bool(out, m.halted);
    enc_u32(out, m.pages.len() as u32);
    for (page, data) in &m.pages {
        enc_u32(out, *page);
        out.extend_from_slice(&data[..]);
    }
}

fn loop_class_tag(c: LoopClass) -> u8 {
    match c {
        LoopClass::Count => 0,
        LoopClass::Function => 1,
        LoopClass::Nest => 2,
        LoopClass::Conditional => 3,
        LoopClass::DynamicRange => 4,
        LoopClass::Sentinel => 5,
        LoopClass::Partial => 6,
        LoopClass::NonVectorizable => 7,
    }
}

fn loop_class_from_tag(tag: u8) -> Result<LoopClass, SnapshotError> {
    Ok(match tag {
        0 => LoopClass::Count,
        1 => LoopClass::Function,
        2 => LoopClass::Nest,
        3 => LoopClass::Conditional,
        4 => LoopClass::DynamicRange,
        5 => LoopClass::Sentinel,
        6 => LoopClass::Partial,
        7 => LoopClass::NonVectorizable,
        _ => return Err(SnapshotError::Malformed("loop-class")),
    })
}

fn enc_stream(out: &mut Vec<u8>, s: &StreamTemplate) {
    enc_u32(out, s.pc);
    enc_u8(out, s.occ);
    enc_bool(out, s.is_write);
    enc_u8(out, s.bytes);
    enc_i64(out, s.gap);
}

fn enc_streams(out: &mut Vec<u8>, streams: &[StreamTemplate]) {
    enc_u32(out, streams.len() as u32);
    for s in streams {
        enc_stream(out, s);
    }
}

fn enc_ops(out: &mut Vec<u8>, ops: &OpMix) {
    enc_u32(out, ops.alu);
    enc_u32(out, ops.mul);
    enc_u32(out, ops.shift);
}

fn enc_template(out: &mut Vec<u8>, t: &LoopTemplate) {
    enc_u8(out, loop_class_tag(t.class));
    enc_u32(out, t.end_pc);
    enc_opt_range(out, t.callee_range);
    enc_opt_u32(out, t.exit_check_pc);
    enc_u8(out, t.elem_bytes);
    enc_bool(out, t.float);
    enc_streams(out, &t.streams);
    enc_ops(out, &t.ops);
    enc_u32(out, t.arms.len() as u32);
    for arm in &t.arms {
        enc_u64(out, arm.path);
        enc_streams(out, &arm.streams);
        enc_ops(out, &arm.ops);
    }
    enc_opt_u32(out, t.partial_distance);
    enc_u32(out, t.spec_range);
    enc_opt_i64(out, t.trip_imm);
    enc_opt_range(out, t.cover_range);
    enc_opt_u32(out, t.fused_inner_trip);
}

fn enc_cached_kind(out: &mut Vec<u8>, kind: &CachedKind) {
    match kind {
        CachedKind::NonVectorizable(class) => {
            enc_u8(out, 0);
            enc_u8(out, loop_class_tag(*class));
        }
        CachedKind::Vectorizable(t) => {
            enc_u8(out, 1);
            enc_template(out, t);
        }
    }
}

fn enc_stats(out: &mut Vec<u8>, s: &DsaStats) {
    // Fixed field order; adding a DsaStats field requires a VERSION bump.
    for v in [
        s.loops_detected,
        s.loops_vectorized,
        s.dsa_cache_hits,
        s.dsa_cache_misses,
        s.covered_iterations,
        s.injected_ops,
        s.detection_cycles,
        s.stage_loop_detection,
        s.stage_data_collection,
        s.stage_dependency_analysis,
        s.stage_store_id_execution,
        s.stage_mapping,
        s.stage_speculative,
        s.vcache_accesses,
        s.array_map_accesses,
        s.cidp_evaluations,
        s.partial_chunks,
        s.discarded_lanes,
        s.faults_injected,
        s.degradations,
        s.poison_events,
    ] {
        enc_u64(out, v);
    }
}

fn enc_engine(out: &mut Vec<u8>, e: &EngineState) {
    enc_u32(out, e.cache_capacity);
    enc_u32(out, e.cache_entries.len() as u32);
    for (id, kind, last_use) in &e.cache_entries {
        enc_u32(out, *id);
        enc_cached_kind(out, kind);
        enc_u64(out, *last_use);
    }
    enc_u64(out, e.cache_tick);
    enc_u64(out, e.cache_hits);
    enc_u64(out, e.cache_misses);
    enc_u64(out, e.cache_evictions);
    enc_u32(out, e.vcache_capacity);
    enc_u64(out, e.vcache_accesses);
    enc_stats(out, &e.stats);
    enc_u32(out, e.census.len() as u32);
    for (id, class) in &e.census {
        enc_u32(out, *id);
        enc_u8(out, loop_class_tag(*class));
    }
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

struct Dec<'a> {
    data: &'a [u8],
}

impl Dec<'_> {
    fn take(&mut self, n: usize, what: &'static str) -> Result<&[u8], SnapshotError> {
        if self.data.len() < n {
            return Err(SnapshotError::Malformed(what));
        }
        let (head, tail) = self.data.split_at(n);
        self.data = tail;
        Ok(head)
    }

    fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1, "u8")?[0])
    }

    fn bool(&mut self, what: &'static str) -> Result<bool, SnapshotError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapshotError::Malformed(what)),
        }
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        let b = self.take(4, "u32")?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        let b = self.take(8, "u64")?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    fn i64(&mut self) -> Result<i64, SnapshotError> {
        Ok(self.u64()? as i64)
    }

    fn opt_u32(&mut self, what: &'static str) -> Result<Option<u32>, SnapshotError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u32()?)),
            _ => Err(SnapshotError::Malformed(what)),
        }
    }

    fn opt_i64(&mut self, what: &'static str) -> Result<Option<i64>, SnapshotError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.i64()?)),
            _ => Err(SnapshotError::Malformed(what)),
        }
    }

    fn opt_range(&mut self, what: &'static str) -> Result<Option<(u32, u32)>, SnapshotError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some((self.u32()?, self.u32()?))),
            _ => Err(SnapshotError::Malformed(what)),
        }
    }

    /// Sanity-caps a declared element count: each element occupies at
    /// least `min_elem_bytes`, so a count larger than the remaining
    /// bytes is malformed (prevents huge pre-allocations from a
    /// corrupted length that happened to pass CRC — e.g. a crafted
    /// image).
    fn count(&mut self, min_elem_bytes: usize, what: &'static str) -> Result<usize, SnapshotError> {
        let n = self.u32()? as usize;
        if n.saturating_mul(min_elem_bytes) > self.data.len() {
            return Err(SnapshotError::Malformed(what));
        }
        Ok(n)
    }
}

fn dec_machine(d: &mut Dec<'_>) -> Result<MachineState, SnapshotError> {
    let mut regs = [0u32; 16];
    for r in &mut regs {
        *r = d.u32()?;
    }
    let mut qregs = [[0u8; 16]; 16];
    for q in &mut qregs {
        q.copy_from_slice(d.take(16, "qreg")?);
    }
    let flag_bits = d.u8()?;
    if flag_bits & 0xF0 != 0 {
        return Err(SnapshotError::Malformed("flags"));
    }
    let flags = Flags::from_bits(flag_bits);
    let halted = d.bool("halted")?;
    let n_pages = d.count(4 + PAGE_BYTES, "page-count")?;
    let mut pages = Vec::with_capacity(n_pages);
    let mut prev: Option<u32> = None;
    for _ in 0..n_pages {
        let page = d.u32()?;
        if prev.is_some_and(|p| p >= page) {
            return Err(SnapshotError::Malformed("page-order"));
        }
        prev = Some(page);
        let mut data = Box::new([0u8; PAGE_BYTES]);
        data.copy_from_slice(d.take(PAGE_BYTES, "page-bytes")?);
        pages.push((page, data));
    }
    Ok(MachineState { regs, qregs, flags, halted, pages })
}

fn dec_stream(d: &mut Dec<'_>) -> Result<StreamTemplate, SnapshotError> {
    Ok(StreamTemplate {
        pc: d.u32()?,
        occ: d.u8()?,
        is_write: d.bool("stream-is-write")?,
        bytes: d.u8()?,
        gap: d.i64()?,
    })
}

fn dec_streams(d: &mut Dec<'_>) -> Result<Vec<StreamTemplate>, SnapshotError> {
    let n = d.count(15, "stream-count")?;
    (0..n).map(|_| dec_stream(d)).collect()
}

fn dec_ops(d: &mut Dec<'_>) -> Result<OpMix, SnapshotError> {
    Ok(OpMix { alu: d.u32()?, mul: d.u32()?, shift: d.u32()? })
}

fn dec_template(d: &mut Dec<'_>) -> Result<LoopTemplate, SnapshotError> {
    let class = loop_class_from_tag(d.u8()?)?;
    let end_pc = d.u32()?;
    let callee_range = d.opt_range("callee-range")?;
    let exit_check_pc = d.opt_u32("exit-check-pc")?;
    let elem_bytes = d.u8()?;
    let float = d.bool("float")?;
    let streams = dec_streams(d)?;
    let ops = dec_ops(d)?;
    let n_arms = d.count(24, "arm-count")?;
    let mut arms = Vec::with_capacity(n_arms);
    for _ in 0..n_arms {
        let path = d.u64()?;
        let arm_streams = dec_streams(d)?;
        let arm_ops = dec_ops(d)?;
        arms.push(ArmTemplate { path, streams: arm_streams, ops: arm_ops });
    }
    Ok(LoopTemplate {
        class,
        end_pc,
        callee_range,
        exit_check_pc,
        elem_bytes,
        float,
        streams,
        ops,
        arms,
        partial_distance: d.opt_u32("partial-distance")?,
        spec_range: d.u32()?,
        trip_imm: d.opt_i64("trip-imm")?,
        cover_range: d.opt_range("cover-range")?,
        fused_inner_trip: d.opt_u32("fused-inner-trip")?,
    })
}

fn dec_cached_kind(d: &mut Dec<'_>) -> Result<CachedKind, SnapshotError> {
    match d.u8()? {
        0 => Ok(CachedKind::NonVectorizable(loop_class_from_tag(d.u8()?)?)),
        1 => Ok(CachedKind::Vectorizable(dec_template(d)?)),
        _ => Err(SnapshotError::Malformed("cached-kind")),
    }
}

fn dec_stats(d: &mut Dec<'_>) -> Result<DsaStats, SnapshotError> {
    Ok(DsaStats {
        loops_detected: d.u64()?,
        loops_vectorized: d.u64()?,
        dsa_cache_hits: d.u64()?,
        dsa_cache_misses: d.u64()?,
        covered_iterations: d.u64()?,
        injected_ops: d.u64()?,
        detection_cycles: d.u64()?,
        stage_loop_detection: d.u64()?,
        stage_data_collection: d.u64()?,
        stage_dependency_analysis: d.u64()?,
        stage_store_id_execution: d.u64()?,
        stage_mapping: d.u64()?,
        stage_speculative: d.u64()?,
        vcache_accesses: d.u64()?,
        array_map_accesses: d.u64()?,
        cidp_evaluations: d.u64()?,
        partial_chunks: d.u64()?,
        discarded_lanes: d.u64()?,
        faults_injected: d.u64()?,
        degradations: d.u64()?,
        poison_events: d.u64()?,
    })
}

fn dec_engine(d: &mut Dec<'_>) -> Result<EngineState, SnapshotError> {
    let cache_capacity = d.u32()?;
    let n_entries = d.count(14, "cache-entry-count")?;
    let mut cache_entries = Vec::with_capacity(n_entries);
    let mut prev: Option<u32> = None;
    for _ in 0..n_entries {
        let id = d.u32()?;
        if prev.is_some_and(|p| p >= id) {
            return Err(SnapshotError::Malformed("cache-entry-order"));
        }
        prev = Some(id);
        let kind = dec_cached_kind(d)?;
        let last_use = d.u64()?;
        cache_entries.push((id, kind, last_use));
    }
    let cache_tick = d.u64()?;
    let cache_hits = d.u64()?;
    let cache_misses = d.u64()?;
    let cache_evictions = d.u64()?;
    let vcache_capacity = d.u32()?;
    let vcache_accesses = d.u64()?;
    let stats = dec_stats(d)?;
    let n_census = d.count(5, "census-count")?;
    let mut census = Vec::with_capacity(n_census);
    let mut prev: Option<u32> = None;
    for _ in 0..n_census {
        let id = d.u32()?;
        if prev.is_some_and(|p| p >= id) {
            return Err(SnapshotError::Malformed("census-order"));
        }
        prev = Some(id);
        census.push((id, loop_class_from_tag(d.u8()?)?));
    }
    Ok(EngineState {
        cache_capacity,
        cache_entries,
        cache_tick,
        cache_hits,
        cache_misses,
        cache_evictions,
        vcache_capacity,
        vcache_accesses,
        stats,
        census,
    })
}

// ---------------------------------------------------------------------
// Session envelope
// ---------------------------------------------------------------------

/// Magic prefix of a session envelope (a snapshot image wrapped with
/// service bookkeeping so a checkpoint can migrate between shards).
pub const SESSION_MAGIC: [u8; 8] = *b"DSASESS\0";
/// Current session-envelope schema version. Independent of the
/// snapshot [`VERSION`]: the envelope wraps the snapshot image as an
/// opaque byte string, so either format can evolve alone.
pub const SESSION_VERSION: u16 = 1;
const SESSION_HEADER_LEN: usize = 8 + 2 + 8 * 4 + 4 + 8;

/// Service bookkeeping that travels with a checkpoint: enough for a
/// healthy shard to adopt a killed shard's in-flight session and keep
/// its identity, progress counter and migration history intact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionMeta {
    /// Service-assigned job id.
    pub job_id: u64,
    /// `Program::content_hash` of the running kernel — the adopting
    /// shard refuses an envelope whose digest disagrees with the job it
    /// thinks it is resuming.
    pub program_digest: u64,
    /// Instructions committed at capture time.
    pub commits: u64,
    /// How many shards this session has already migrated across.
    pub migrations: u64,
    /// The shard that captured the checkpoint.
    pub shard: u32,
}

impl SessionMeta {
    /// Wraps a snapshot wire image (from [`Snapshot::to_bytes`]) into a
    /// session envelope: magic, version, meta fields, payload length,
    /// payload, CRC-32 trailer over everything before it.
    pub fn wrap(&self, snapshot_bytes: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(SESSION_HEADER_LEN + snapshot_bytes.len() + 4);
        out.extend_from_slice(&SESSION_MAGIC);
        out.extend_from_slice(&SESSION_VERSION.to_le_bytes());
        out.extend_from_slice(&self.job_id.to_le_bytes());
        out.extend_from_slice(&self.program_digest.to_le_bytes());
        out.extend_from_slice(&self.commits.to_le_bytes());
        out.extend_from_slice(&self.migrations.to_le_bytes());
        out.extend_from_slice(&self.shard.to_le_bytes());
        out.extend_from_slice(&(snapshot_bytes.len() as u64).to_le_bytes());
        out.extend_from_slice(snapshot_bytes);
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Parses a session envelope, returning the metadata and the inner
    /// snapshot image (still to be validated by
    /// [`Snapshot::from_bytes`] — the envelope CRC already covers it,
    /// but the snapshot's own schema checks still apply).
    ///
    /// # Errors
    ///
    /// Same typed vocabulary as the snapshot reader: short images →
    /// [`SnapshotError::Truncated`], wrong prefix →
    /// [`SnapshotError::BadMagic`], unknown version →
    /// [`SnapshotError::UnsupportedVersion`], any bit flip →
    /// [`SnapshotError::ChecksumMismatch`], trailing bytes →
    /// [`SnapshotError::Malformed`]. Never panics.
    pub fn unwrap(bytes: &[u8]) -> Result<(SessionMeta, &[u8]), SnapshotError> {
        if bytes.len() < SESSION_HEADER_LEN + 4 {
            return Err(SnapshotError::Truncated);
        }
        if bytes[..8] != SESSION_MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = u16::from_le_bytes([bytes[8], bytes[9]]);
        if version != SESSION_VERSION {
            return Err(SnapshotError::UnsupportedVersion(version));
        }
        let u64_at = |off: usize| {
            let mut a = [0u8; 8];
            a.copy_from_slice(&bytes[off..off + 8]);
            u64::from_le_bytes(a)
        };
        let payload_len = u64_at(SESSION_HEADER_LEN - 8) as usize;
        let total = match SESSION_HEADER_LEN.checked_add(payload_len).and_then(|n| n.checked_add(4))
        {
            Some(t) => t,
            None => return Err(SnapshotError::Malformed("session-payload-length")),
        };
        if bytes.len() < total {
            return Err(SnapshotError::Truncated);
        }
        if bytes.len() > total {
            return Err(SnapshotError::Malformed("session-trailing-bytes"));
        }
        let stored_crc = u32::from_le_bytes([
            bytes[total - 4],
            bytes[total - 3],
            bytes[total - 2],
            bytes[total - 1],
        ]);
        if crc32(&bytes[..total - 4]) != stored_crc {
            return Err(SnapshotError::ChecksumMismatch);
        }
        let meta = SessionMeta {
            job_id: u64_at(10),
            program_digest: u64_at(18),
            commits: u64_at(26),
            migrations: u64_at(34),
            shard: u32::from_le_bytes([bytes[42], bytes[43], bytes[44], bytes[45]]),
        };
        Ok((meta, &bytes[SESSION_HEADER_LEN..total - 4]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard check value for "123456789" under CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn crc32_detects_every_single_bit_flip() {
        let data = b"the dsa cache survives the crash";
        let good = crc32(data);
        let mut buf = data.to_vec();
        for bit in 0..buf.len() * 8 {
            buf[bit / 8] ^= 1 << (bit % 8);
            assert_ne!(crc32(&buf), good, "bit {bit} undetected");
            buf[bit / 8] ^= 1 << (bit % 8);
        }
    }

    #[test]
    fn fingerprint_neutralizes_faults_and_trace() {
        let base = DsaConfig::default();
        let with_faults = base.with_faults(crate::FaultPlan::all(7)).with_trace();
        assert_eq!(config_fingerprint(&base), config_fingerprint(&with_faults));
        let bigger = DsaConfig { dsa_cache_bytes: 16 * 1024, ..base };
        assert_ne!(config_fingerprint(&base), config_fingerprint(&bigger));
    }

    #[test]
    fn empty_snapshot_roundtrips() {
        let dsa = Dsa::new(DsaConfig::default());
        let machine = Machine::new();
        let snap = Snapshot::capture(&dsa, &machine);
        let bytes = snap.to_bytes();
        let back = Snapshot::from_bytes(&bytes).expect("valid image");
        assert_eq!(back.to_bytes(), bytes, "re-serialization is byte-identical");
        let machine2 = back.restore_machine();
        assert_eq!(machine2.arch_digest(), machine.arch_digest());
        let dsa2 = back.restore_engine(DsaConfig::default()).expect("same config");
        assert_eq!(dsa2.stats(), dsa.stats());
    }

    #[test]
    fn rejects_truncation_magic_version_and_trailing() {
        let dsa = Dsa::new(DsaConfig::default());
        let bytes = Snapshot::capture(&dsa, &Machine::new()).to_bytes();

        for cut in [0, 1, HEADER_LEN, bytes.len() - 1] {
            assert!(
                matches!(
                    Snapshot::from_bytes(&bytes[..cut]),
                    Err(SnapshotError::Truncated)
                ),
                "cut at {cut}"
            );
        }

        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        assert!(matches!(
            Snapshot::from_bytes(&bad_magic),
            Err(SnapshotError::BadMagic)
        ));

        let mut bad_version = bytes.clone();
        bad_version[8] = 99;
        assert!(matches!(
            Snapshot::from_bytes(&bad_version),
            Err(SnapshotError::UnsupportedVersion(99))
        ));

        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(matches!(
            Snapshot::from_bytes(&trailing),
            Err(SnapshotError::Malformed("trailing-bytes"))
        ));
    }

    #[test]
    fn config_mismatch_is_typed() {
        let dsa = Dsa::new(DsaConfig::default());
        let snap = Snapshot::capture(&dsa, &Machine::new());
        let other = DsaConfig { vcache_bytes: 2048, ..DsaConfig::default() };
        assert!(matches!(
            snap.restore_engine(other),
            Err(SnapshotError::ConfigMismatch)
        ));
    }

    #[test]
    fn every_single_bit_flip_of_an_image_is_rejected() {
        let dsa = Dsa::new(DsaConfig::default());
        let bytes = Snapshot::capture(&dsa, &Machine::new()).to_bytes();
        let mut buf = bytes.clone();
        for bit in 0..buf.len() * 8 {
            buf[bit / 8] ^= 1 << (bit % 8);
            assert!(
                Snapshot::from_bytes(&buf).is_err(),
                "flipped bit {bit} produced an accepted image"
            );
            buf[bit / 8] ^= 1 << (bit % 8);
        }
        assert!(Snapshot::from_bytes(&buf).is_ok(), "unflipped image still valid");
    }

    #[test]
    fn error_display_and_names_are_stable() {
        let cases = [
            (SnapshotError::Truncated, "truncated"),
            (SnapshotError::BadMagic, "bad-magic"),
            (SnapshotError::UnsupportedVersion(3), "unsupported-version"),
            (SnapshotError::ChecksumMismatch, "checksum-mismatch"),
            (SnapshotError::Malformed("x"), "malformed"),
            (SnapshotError::ConfigMismatch, "config-mismatch"),
        ];
        for (e, name) in cases {
            assert_eq!(e.kind_name(), name);
            assert!(!e.to_string().is_empty());
        }
    }

    fn meta() -> SessionMeta {
        SessionMeta { job_id: 77, program_digest: 0xDEAD_BEEF, commits: 4_096, migrations: 2, shard: 3 }
    }

    #[test]
    fn session_envelope_roundtrips_and_preserves_the_payload() {
        let payload = b"not actually a snapshot - the envelope treats it opaquely";
        let wire = meta().wrap(payload);
        let (back, inner) = SessionMeta::unwrap(&wire).expect("roundtrips");
        assert_eq!(back, meta());
        assert_eq!(inner, payload);
        // Empty payloads are legal (a session can checkpoint zero-state
        // placeholders while queued).
        let empty = meta().wrap(&[]);
        let (_, inner) = SessionMeta::unwrap(&empty).expect("empty payload ok");
        assert!(inner.is_empty());
    }

    #[test]
    fn session_envelope_rejects_every_single_bit_flip() {
        let mut wire = meta().wrap(b"payload");
        for bit in 0..wire.len() * 8 {
            wire[bit / 8] ^= 1 << (bit % 8);
            assert!(
                SessionMeta::unwrap(&wire).is_err(),
                "flipped bit {bit} produced an accepted envelope"
            );
            wire[bit / 8] ^= 1 << (bit % 8);
        }
        assert!(SessionMeta::unwrap(&wire).is_ok(), "unflipped envelope still valid");
    }

    #[test]
    fn session_envelope_typed_rejections() {
        let wire = meta().wrap(b"payload");
        for cut in 0..wire.len() {
            assert!(
                matches!(
                    SessionMeta::unwrap(&wire[..cut]),
                    Err(SnapshotError::Truncated | SnapshotError::ChecksumMismatch)
                ),
                "truncation at {cut} must be typed"
            );
        }
        let mut long = wire.clone();
        long.push(0);
        assert_eq!(SessionMeta::unwrap(&long), Err(SnapshotError::Malformed("session-trailing-bytes")));
        let mut magic = wire.clone();
        magic[0] ^= 0xFF;
        assert_eq!(SessionMeta::unwrap(&magic), Err(SnapshotError::BadMagic));
        let mut version = wire;
        version[8] = 9;
        // Version bytes are CRC-covered, so distinguish the version
        // check from the checksum by re-signing the image.
        let n = version.len();
        let crc = crc32(&version[..n - 4]);
        version[n - 4..].copy_from_slice(&crc.to_le_bytes());
        assert_eq!(SessionMeta::unwrap(&version), Err(SnapshotError::UnsupportedVersion(9)));
        // A snapshot image is not a session envelope and vice versa.
        let dsa = Dsa::new(DsaConfig::full());
        let machine = Machine::new();
        let snap = Snapshot::capture(&dsa, &machine).to_bytes();
        assert_eq!(SessionMeta::unwrap(&snap), Err(SnapshotError::BadMagic));
        assert_eq!(Snapshot::from_bytes(&meta().wrap(&snap)).err(), Some(SnapshotError::BadMagic));
    }
}
