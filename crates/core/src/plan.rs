//! SIMD instruction generation (§4.7) and leftover handling (§4.8).

use dsa_cpu::InjectedOp;
use dsa_isa::{ElemType, Instr, QReg, Reg, VecOp};

use crate::config::LeftoverPolicy;
use crate::stats::LoopClass;

/// One access stream as stored in the DSA cache: enough to regenerate
/// the stream's addresses for any future loop instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamTemplate {
    /// PC of the load/store.
    pub pc: u32,
    /// Occurrence index within an iteration.
    pub occ: u8,
    /// Whether the stream writes.
    pub is_write: bool,
    /// Access width in bytes.
    pub bytes: u8,
    /// Per-iteration address gap.
    pub gap: i64,
}

/// Vectorizable value-operation mix of a loop body.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpMix {
    /// Non-multiply element ops.
    pub alu: u32,
    /// Multiplies.
    pub mul: u32,
    /// Right shifts.
    pub shift: u32,
}

impl OpMix {
    /// Total value operations.
    pub fn total(&self) -> u32 {
        self.alu + self.mul + self.shift
    }
}

/// One conditional arm of a conditional loop.
#[derive(Debug, Clone, PartialEq)]
pub struct ArmTemplate {
    /// Path hash identifying the arm.
    pub path: u64,
    /// The arm's access streams.
    pub streams: Vec<StreamTemplate>,
    /// The arm's operation mix.
    pub ops: OpMix,
}

/// Everything the DSA cache stores about a verified vectorizable loop.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopTemplate {
    /// Loop classification.
    pub class: LoopClass,
    /// PC of the closing backward branch.
    pub end_pc: u32,
    /// PC range of called functions, if the body calls one.
    pub callee_range: Option<(u32, u32)>,
    /// PC of the sentinel stop check, if any.
    pub exit_check_pc: Option<u32>,
    /// Element width in bytes.
    pub elem_bytes: u8,
    /// Whether the element type is float.
    pub float: bool,
    /// Access streams (straight-line part).
    pub streams: Vec<StreamTemplate>,
    /// Operation mix (straight-line part).
    pub ops: OpMix,
    /// Conditional arms (empty for non-conditional loops).
    pub arms: Vec<ArmTemplate>,
    /// Partial-vectorization chunk size in iterations, if the loop has a
    /// bounded cross-iteration dependency.
    pub partial_distance: Option<u32>,
    /// Speculative range for sentinel loops (updated after every run).
    pub spec_range: u32,
    /// The immediate trip limit for static count loops, if known.
    pub trip_imm: Option<i64>,
    /// PC range of the condition-dependent arm bodies (conditional
    /// loops): only these instructions are covered by speculative vector
    /// execution — the condition evaluation itself stays on the scalar
    /// core, which is what drives the Vector-Map mapping.
    pub cover_range: Option<(u32, u32)>,
    /// For a fused loop nest (§4.6.3, no instructions between the
    /// loops): the inner loop's trip count — each remaining *outer*
    /// iteration contributes this many elements per stream.
    pub fused_inner_trip: Option<u32>,
}

/// A structural defect found in a cached [`LoopTemplate`] — the DSA
/// validates every template as it leaves the cache, so a corrupted entry
/// (bit flip, fault injection) degrades the loop to scalar execution
/// instead of driving the planner into undefined behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TemplateDefect {
    /// `elem_bytes` is not 1, 2 or 4 (would break lane math).
    BadElemBytes(u8),
    /// A stream's gap is not the unit stride the planner requires.
    BadStreamGap {
        /// PC of the offending stream.
        pc: u32,
        /// The bad gap.
        gap: i64,
    },
    /// The template carries no executable work (no streams / no arms).
    NoWork,
}

impl std::fmt::Display for TemplateDefect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TemplateDefect::BadElemBytes(b) => write!(f, "invalid element width {b}"),
            TemplateDefect::BadStreamGap { pc, gap } => {
                write!(f, "stream at pc {pc} has non-unit gap {gap}")
            }
            TemplateDefect::NoWork => write!(f, "template carries no streams or arms"),
        }
    }
}

impl std::error::Error for TemplateDefect {}

impl LoopTemplate {
    /// Lanes per 128-bit vector for this loop's element type.
    pub fn lanes(&self) -> u32 {
        16 / self.elem_bytes as u32
    }

    /// Checks the structural invariants every cache-resident template
    /// satisfies by construction: a valid element width, unit-stride
    /// straight-line streams, unit-or-invariant arm streams, and at
    /// least one stream (or one arm, for conditional loops).
    ///
    /// # Errors
    ///
    /// Returns the first [`TemplateDefect`] found.
    pub fn validate(&self) -> Result<(), TemplateDefect> {
        if !matches!(self.elem_bytes, 1 | 2 | 4) {
            return Err(TemplateDefect::BadElemBytes(self.elem_bytes));
        }
        let elem = self.elem_bytes as i64;
        for s in &self.streams {
            if s.gap != elem {
                return Err(TemplateDefect::BadStreamGap { pc: s.pc, gap: s.gap });
            }
        }
        for arm in &self.arms {
            for s in &arm.streams {
                if s.gap != 0 && s.gap != elem {
                    return Err(TemplateDefect::BadStreamGap { pc: s.pc, gap: s.gap });
                }
            }
        }
        let has_work = if self.class == LoopClass::Conditional {
            !self.arms.is_empty()
        } else {
            !self.streams.is_empty()
        };
        if !has_work {
            return Err(TemplateDefect::NoWork);
        }
        Ok(())
    }

    /// The vector element type.
    pub fn elem_type(&self) -> ElemType {
        match (self.elem_bytes, self.float) {
            (1, _) => ElemType::I8,
            (2, _) => ElemType::I16,
            (4, true) => ElemType::F32,
            _ => ElemType::I32,
        }
    }

    /// A minimal template for unit tests.
    #[doc(hidden)]
    pub fn test_dummy() -> LoopTemplate {
        LoopTemplate {
            class: LoopClass::Count,
            end_pc: 0,
            callee_range: None,
            exit_check_pc: None,
            elem_bytes: 4,
            float: false,
            streams: vec![
                StreamTemplate { pc: 1, occ: 0, is_write: false, bytes: 4, gap: 4 },
                StreamTemplate { pc: 2, occ: 0, is_write: true, bytes: 4, gap: 4 },
            ],
            ops: OpMix { alu: 1, mul: 0, shift: 0 },
            arms: Vec::new(),
            partial_distance: None,
            spec_range: 0,
            trip_imm: None,
            cover_range: None,
            fused_inner_trip: None,
        }
    }
}

/// The generated SIMD work for one vectorized region.
#[derive(Debug, Clone)]
pub struct VectorPlan {
    /// Operations to inject into the Issue stage, in order.
    pub ops: Vec<InjectedOp>,
    /// Full vector chunks generated.
    pub chunks: u32,
    /// Iterations handled by the leftover strategy.
    pub leftover_elems: u32,
    /// The strategy actually used for leftovers.
    pub leftover_used: LeftoverPolicy,
    /// Extra lanes computed and discarded (overlap / padding).
    pub discarded_lanes: u32,
}

/// Builds the SIMD work covering `iterations` loop iterations, with the
/// stream base addresses giving each stream's address at the *first*
/// covered iteration.
///
/// `streams` pairs every stream template with that base address.
///
/// # Examples
///
/// ```
/// use dsa_core::{build_plan, LeftoverPolicy, LoopTemplate};
///
/// let template = LoopTemplate::test_dummy(); // one load + one store, i32
/// let streams: Vec<_> = template
///     .streams
///     .iter()
///     .map(|&s| (s, 0x1000))
///     .collect();
/// let plan = build_plan(&template, &streams, template.ops, 21, LeftoverPolicy::Auto);
/// assert_eq!(plan.chunks, 5);          // 20 elements in 4-lane vectors
/// assert_eq!(plan.leftover_elems, 1);  // plus one leftover
/// ```
///
/// # Panics
///
/// Panics if `elem_bytes` is not 1, 2 or 4 (no such streams exist in
/// practice) or if a stream's gap does not equal its element width (the
/// engine rejects non-unit strides before planning).
pub fn build_plan(
    template: &LoopTemplate,
    streams: &[(StreamTemplate, u32)],
    ops: OpMix,
    iterations: u32,
    policy: LeftoverPolicy,
) -> VectorPlan {
    let lanes = template.lanes();
    let et = template.elem_type();
    for (s, _) in streams {
        assert_eq!(
            s.gap.unsigned_abs() as u32,
            template.elem_bytes as u32,
            "plan requires unit-stride streams"
        );
    }
    let chunks = iterations / lanes;
    let leftover = iterations % lanes;

    let mut plan = VectorPlan {
        ops: Vec::new(),
        chunks,
        leftover_elems: leftover,
        leftover_used: LeftoverPolicy::SingleElements,
        discarded_lanes: 0,
    };

    for c in 0..chunks {
        emit_chunk(&mut plan.ops, streams, ops, et, c, c * lanes);
    }

    if leftover > 0 {
        let resolved = match policy {
            LeftoverPolicy::Auto => {
                if chunks >= 1 && overlap_safe(streams) {
                    LeftoverPolicy::Overlapping
                } else {
                    LeftoverPolicy::SingleElements
                }
            }
            LeftoverPolicy::Overlapping if chunks == 0 || !overlap_safe(streams) => {
                LeftoverPolicy::SingleElements
            }
            p => p,
        };
        plan.leftover_used = resolved;
        match resolved {
            LeftoverPolicy::Overlapping => {
                // Final full vector ending exactly at the last element.
                emit_chunk(&mut plan.ops, streams, ops, et, chunks, iterations - lanes);
                plan.discarded_lanes = lanes - leftover;
            }
            LeftoverPolicy::LargerArrays => {
                // One padded vector starting at the first leftover.
                emit_chunk(&mut plan.ops, streams, ops, et, chunks, chunks * lanes);
                plan.discarded_lanes = lanes - leftover;
            }
            _ => {
                for e in 0..leftover {
                    emit_single(&mut plan.ops, streams, ops, et, chunks * lanes + e);
                }
            }
        }
    }

    plan
}

/// Whether re-executing trailing lanes is safe: unsafe when the loop
/// updates a buffer in place (a load stream shares its address sequence
/// with a store stream), because the recomputation would read already-
/// updated values.
fn overlap_safe(streams: &[(StreamTemplate, u32)]) -> bool {
    let writes: Vec<u32> = streams.iter().filter(|(s, _)| s.is_write).map(|(_, a)| *a).collect();
    !streams
        .iter()
        .filter(|(s, _)| !s.is_write)
        .any(|(_, a)| writes.contains(a))
}

fn stream_addr(base: u32, s: &StreamTemplate, elem_index: u32) -> u32 {
    (base as i64 + s.gap * elem_index as i64) as u32
}

fn emit_chunk(
    out: &mut Vec<InjectedOp>,
    streams: &[(StreamTemplate, u32)],
    ops: OpMix,
    et: ElemType,
    chunk_index: u32,
    elem_index: u32,
) {
    // Rotate registers so independent chunks can pipeline on the NEON
    // engine while ops inside a chunk stay dependent (expression tree).
    let mut load_qs: Vec<QReg> = Vec::new();
    for (next_load, (s, base)) in streams.iter().filter(|(s, _)| !s.is_write).enumerate() {
        let q = QReg::new(4 + ((chunk_index * 2 + next_load as u32) % 4) as u8);
        load_qs.push(q);
        out.push(InjectedOp::at(
            Instr::Vld1 { qd: q, rn: Reg::R2, writeback: false, et },
            stream_addr(*base, s, elem_index),
        ));
    }
    // Emit the value operations as an expression *tree*, the shape the
    // SIMD generator reconstructs from the body profile: multiplies are
    // independent (each reads loads), then a shallow combine chain of
    // adds/shifts. Two destination registers alternate per chunk so
    // consecutive chunks pipeline on the NEON engine.
    let dest = QReg::new(8 + ((chunk_index % 4) * 2) as u8);
    let side = QReg::new(9 + ((chunk_index % 4) * 2) as u8);
    let mut emitted = 0u32;
    let mut src_iter = load_qs.iter().copied().cycle();
    let first = src_iter.next().unwrap_or(dest);
    // Independent multiplies into the side register bank.
    for k in 0..ops.mul {
        let qn = src_iter.next().unwrap_or(first);
        let qm = src_iter.next().unwrap_or(first);
        let qd = if k == 0 { dest } else { side };
        out.push(InjectedOp::plain(Instr::Vop { op: VecOp::Mul, et, qd, qn, qm }));
        emitted += 1;
    }
    // Combine chain: adds fold the side results / loads into `dest`.
    for _ in 0..ops.alu {
        let qm = if emitted > 1 { side } else { src_iter.next().unwrap_or(first) };
        let qn = if emitted == 0 { first } else { dest };
        out.push(InjectedOp::plain(Instr::Vop { op: VecOp::Add, et, qd: dest, qn, qm }));
        emitted += 1;
    }
    for _ in 0..ops.shift {
        let qn = if emitted == 0 { first } else { dest };
        out.push(InjectedOp::plain(Instr::VshrImm { qd: dest, qn, shift: 1, et }));
        emitted += 1;
    }
    if emitted == 0 {
        // Pure copy loops still move data through a register.
        out.push(InjectedOp::plain(Instr::Vmov { qd: dest, qm: first }));
    }
    for (s, base) in streams.iter().filter(|(s, _)| s.is_write) {
        out.push(InjectedOp::at(
            Instr::Vst1 { qs: dest, rn: Reg::R2, writeback: false, et },
            stream_addr(*base, s, elem_index),
        ));
    }
}

fn emit_single(
    out: &mut Vec<InjectedOp>,
    streams: &[(StreamTemplate, u32)],
    ops: OpMix,
    et: ElemType,
    elem_index: u32,
) {
    let dest = QReg::Q12;
    let mut first = dest;
    for (i, (s, base)) in streams.iter().filter(|(s, _)| !s.is_write).enumerate() {
        let q = QReg::new(4 + (i % 4) as u8);
        if i == 0 {
            first = q;
        }
        out.push(InjectedOp::at(
            Instr::Vld1Lane { qd: q, lane: 0, rn: Reg::R2, writeback: false, et },
            stream_addr(*base, s, elem_index),
        ));
    }
    for _ in 0..ops.total().max(1) {
        out.push(InjectedOp::plain(Instr::Vop {
            op: VecOp::Add,
            et,
            qd: dest,
            qn: first,
            qm: first,
        }));
    }
    for (s, base) in streams.iter().filter(|(s, _)| s.is_write) {
        out.push(InjectedOp::at(
            Instr::Vst1Lane { qs: dest, lane: 0, rn: Reg::R2, writeback: false, et },
            stream_addr(*base, s, elem_index),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsa_isa::InstrClass;

    fn streams_for(t: &LoopTemplate) -> Vec<(StreamTemplate, u32)> {
        t.streams
            .iter()
            .enumerate()
            .map(|(i, &s)| (s, 0x1000 + 0x100 * i as u32))
            .collect()
    }

    fn count_class(plan: &VectorPlan, class: InstrClass) -> usize {
        plan.ops.iter().filter(|o| o.instr.class() == class).count()
    }

    #[test]
    fn validate_accepts_real_templates_and_rejects_corruption() {
        let t = LoopTemplate::test_dummy();
        assert_eq!(t.validate(), Ok(()));

        let mut bad_elem = t.clone();
        bad_elem.elem_bytes = 0;
        assert_eq!(bad_elem.validate(), Err(TemplateDefect::BadElemBytes(0)));

        let mut bad_gap = t.clone();
        bad_gap.streams[0].gap = 7;
        assert_eq!(
            bad_gap.validate(),
            Err(TemplateDefect::BadStreamGap { pc: bad_gap.streams[0].pc, gap: 7 })
        );

        let mut empty = t.clone();
        empty.streams.clear();
        assert_eq!(empty.validate(), Err(TemplateDefect::NoWork));

        let mut cond = t;
        cond.class = LoopClass::Conditional;
        cond.streams.clear();
        assert_eq!(cond.validate(), Err(TemplateDefect::NoWork));
        cond.arms.push(ArmTemplate {
            path: 1,
            streams: vec![StreamTemplate { pc: 9, occ: 0, is_write: true, bytes: 4, gap: 4 }],
            ops: OpMix::default(),
        });
        assert_eq!(cond.validate(), Ok(()));
    }

    #[test]
    fn exact_multiple_has_no_leftover() {
        let t = LoopTemplate::test_dummy();
        let plan = build_plan(&t, &streams_for(&t), t.ops, 40, LeftoverPolicy::Auto);
        assert_eq!(plan.chunks, 10);
        assert_eq!(plan.leftover_elems, 0);
        assert_eq!(count_class(&plan, InstrClass::VecLoad), 10);
        assert_eq!(count_class(&plan, InstrClass::VecStore), 10);
        assert_eq!(count_class(&plan, InstrClass::VecAlu), 10);
        assert_eq!(plan.discarded_lanes, 0);
    }

    #[test]
    fn single_elements_leftover() {
        let t = LoopTemplate::test_dummy();
        let plan = build_plan(&t, &streams_for(&t), t.ops, 21, LeftoverPolicy::SingleElements);
        assert_eq!(plan.chunks, 5);
        assert_eq!(plan.leftover_elems, 1);
        assert_eq!(plan.leftover_used, LeftoverPolicy::SingleElements);
        // 5 chunk loads + 1 lane load.
        assert_eq!(count_class(&plan, InstrClass::VecLoad), 6);
        assert_eq!(plan.discarded_lanes, 0);
    }

    #[test]
    fn overlapping_leftover_full_final_vector() {
        let t = LoopTemplate::test_dummy();
        let plan = build_plan(&t, &streams_for(&t), t.ops, 21, LeftoverPolicy::Overlapping);
        assert_eq!(plan.chunks, 5);
        assert_eq!(plan.leftover_used, LeftoverPolicy::Overlapping);
        assert_eq!(count_class(&plan, InstrClass::VecLoad), 6, "one overlapping chunk");
        assert_eq!(plan.discarded_lanes, 3);
        // The final load starts at element 17 (21 - 4 lanes).
        let last_load = plan
            .ops
            .iter()
            .rfind(|o| o.instr.class() == InstrClass::VecLoad)
            .unwrap();
        assert_eq!(last_load.addr, Some(0x1000 + 17 * 4));
    }

    #[test]
    fn larger_arrays_pads_past_end() {
        let t = LoopTemplate::test_dummy();
        let plan = build_plan(&t, &streams_for(&t), t.ops, 21, LeftoverPolicy::LargerArrays);
        assert_eq!(plan.leftover_used, LeftoverPolicy::LargerArrays);
        let last_load = plan
            .ops
            .iter()
            .rfind(|o| o.instr.class() == InstrClass::VecLoad)
            .unwrap();
        assert_eq!(last_load.addr, Some(0x1000 + 20 * 4), "starts at the first leftover");
    }

    #[test]
    fn auto_prefers_overlap_when_safe() {
        let t = LoopTemplate::test_dummy();
        let plan = build_plan(&t, &streams_for(&t), t.ops, 21, LeftoverPolicy::Auto);
        assert_eq!(plan.leftover_used, LeftoverPolicy::Overlapping);
    }

    #[test]
    fn auto_falls_back_for_in_place_updates() {
        // c[i] = c[i] + …: load and store share the same base address.
        let t = LoopTemplate::test_dummy();
        let streams = vec![(t.streams[0], 0x1000), (t.streams[1], 0x1000)];
        let plan = build_plan(&t, &streams, t.ops, 21, LeftoverPolicy::Auto);
        assert_eq!(plan.leftover_used, LeftoverPolicy::SingleElements);
    }

    #[test]
    fn tiny_trip_all_singles() {
        let t = LoopTemplate::test_dummy();
        let plan = build_plan(&t, &streams_for(&t), t.ops, 3, LeftoverPolicy::Auto);
        assert_eq!(plan.chunks, 0);
        assert_eq!(plan.leftover_used, LeftoverPolicy::SingleElements);
        assert_eq!(count_class(&plan, InstrClass::VecLoad), 3);
    }

    #[test]
    fn addresses_advance_by_lane_stride() {
        let t = LoopTemplate::test_dummy();
        let plan = build_plan(&t, &streams_for(&t), t.ops, 8, LeftoverPolicy::Auto);
        let loads: Vec<u32> = plan
            .ops
            .iter()
            .filter(|o| o.instr.class() == InstrClass::VecLoad)
            .filter_map(|o| o.addr)
            .collect();
        assert_eq!(loads, vec![0x1000, 0x1000 + 16]);
    }

    #[test]
    fn ops_mix_reflected() {
        let mut t = LoopTemplate::test_dummy();
        t.ops = OpMix { alu: 2, mul: 1, shift: 1 };
        let plan = build_plan(&t, &streams_for(&t), t.ops, 4, LeftoverPolicy::Auto);
        assert_eq!(count_class(&plan, InstrClass::VecMul), 1);
        assert_eq!(count_class(&plan, InstrClass::VecAlu), 3, "2 adds + 1 shift");
    }
}
