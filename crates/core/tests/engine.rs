//! End-to-end tests of the DSA engine over compiler-built kernels:
//! every loop class of the paper, feature gating across the three DSA
//! generations, cache behaviour and semantic equivalence.

use dsa_compiler::{
    regs, Body, CmpOp, DataType, Expr, Kernel, KernelBuilder, LoopIr, Trip, Variant,
};
use dsa_core::{Dsa, DsaConfig, LoopClass};
use dsa_cpu::{CpuConfig, Machine, RunOutcome, Simulator};

fn run_scalar(kernel: &Kernel, init: &dyn Fn(&mut Machine)) -> (RunOutcome, Machine) {
    let mut sim = Simulator::new(kernel.program.clone(), CpuConfig::default());
    init(sim.machine_mut());
    sim.warm_region(dsa_compiler::DATA_BASE_ADDR, 128 << 10);
    let out = sim.run(50_000_000).expect("scalar run ok");
    assert!(out.halted, "kernel must halt");
    (out, sim.machine().clone())
}

fn run_dsa(
    kernel: &Kernel,
    config: DsaConfig,
    init: &dyn Fn(&mut Machine),
) -> (RunOutcome, Machine, Dsa) {
    let mut dsa = Dsa::new(config);
    let mut sim = Simulator::new(kernel.program.clone(), CpuConfig::default());
    init(sim.machine_mut());
    sim.warm_region(dsa_compiler::DATA_BASE_ADDR, 128 << 10);
    let out = sim.run_with_hook(50_000_000, &mut dsa).expect("dsa run ok");
    assert!(out.halted, "kernel must halt");
    (out, sim.machine().clone(), dsa)
}

fn assert_same_memory(a: &Machine, b: &Machine) {
    assert_eq!(a.mem.digest(), b.mem.digest(), "final memory must match");
}

/// v[i] = a[i] + b[i] over I32, count loop.
fn count_kernel(n: u32) -> (Kernel, u32, u32, u32) {
    let mut kb = KernelBuilder::new(Variant::Scalar);
    let a = kb.alloc("a", DataType::I32, n);
    let b = kb.alloc("b", DataType::I32, n);
    let v = kb.alloc("v", DataType::I32, n);
    let (la, lb, lv) = (kb.layout().buf(a).base, kb.layout().buf(b).base, kb.layout().buf(v).base);
    kb.emit_loop(LoopIr {
        name: "count".into(),
        trip: Trip::Const(n),
        elem: DataType::I32,
        body: Body::Map { dst: v.at(0), expr: Expr::load(a.at(0)) + Expr::load(b.at(0)) },
        ..LoopIr::default()
    });
    kb.halt();
    (kb.finish(), la, lb, lv)
}

#[test]
fn count_loop_is_vectorized_and_faster() {
    let (kernel, la, lb, _lv) = count_kernel(400);
    let init = move |m: &mut Machine| {
        for i in 0..400u32 {
            m.mem.write_u32(la + 4 * i, i);
            m.mem.write_u32(lb + 4 * i, 1000 + i);
        }
    };
    let (scalar, scalar_m) = run_scalar(&kernel, &init);
    let (dsa_out, dsa_m, dsa) = run_dsa(&kernel, DsaConfig::original(), &init);

    assert_same_memory(&scalar_m, &dsa_m);
    let stats = dsa.stats();
    assert_eq!(stats.loops_vectorized, 1);
    assert!(dsa_out.timing.covered > 390 * 5, "most iterations covered");
    assert!(
        dsa_out.cycles < scalar.cycles,
        "DSA must beat scalar: {} vs {}",
        dsa_out.cycles,
        scalar.cycles
    );
    assert_eq!(dsa.census().count(LoopClass::Count), 1);
    assert!(stats.detection_cycles > 0);
}

#[test]
fn non_vectorizable_loop_has_no_penalty() {
    // Gather loop: indirect addressing, never vectorized.
    let mut kb = KernelBuilder::new(Variant::Scalar);
    let idx = kb.alloc("idx", DataType::I32, 64);
    let table = kb.alloc("table", DataType::I32, 64);
    let v = kb.alloc("v", DataType::I32, 64);
    let (li, lt, _lv) =
        (kb.layout().buf(idx).base, kb.layout().buf(table).base, kb.layout().buf(v).base);
    kb.emit_loop(LoopIr {
        name: "gather".into(),
        trip: Trip::Const(64),
        elem: DataType::I32,
        body: Body::Map {
            dst: v.at(0),
            expr: Expr::Gather(table, Box::new(Expr::load(idx.at(0)))),
        },
        ..LoopIr::default()
    });
    kb.halt();
    let kernel = kb.finish();
    let init = move |m: &mut Machine| {
        for i in 0..64u32 {
            m.mem.write_u32(li + 4 * i, 63 - i);
            m.mem.write_u32(lt + 4 * i, i * 7);
        }
    };
    let (scalar, scalar_m) = run_scalar(&kernel, &init);
    let (dsa_out, dsa_m, dsa) = run_dsa(&kernel, DsaConfig::full(), &init);
    assert_same_memory(&scalar_m, &dsa_m);
    assert_eq!(dsa.stats().loops_vectorized, 0);
    assert_eq!(dsa_out.cycles, scalar.cycles, "DSA analysis runs in parallel: zero penalty");
    assert_eq!(dsa.census().count(LoopClass::NonVectorizable), 1);
}

#[test]
fn dynamic_range_loop_gated_by_feature() {
    let mut kb = KernelBuilder::new(Variant::Scalar);
    let a = kb.alloc("a", DataType::I32, 256);
    let v = kb.alloc("v", DataType::I32, 256);
    let la = kb.layout().buf(a).base;
    kb.asm_mut().mov_imm(regs::PARAM[0], 200); // runtime trip
    kb.emit_loop(LoopIr {
        name: "drla".into(),
        trip: Trip::Reg(regs::PARAM[0]),
        elem: DataType::I32,
        body: Body::Map { dst: v.at(0), expr: Expr::load(a.at(0)) * Expr::Imm(3) },
        ..LoopIr::default()
    });
    kb.halt();
    let kernel = kb.finish();
    let init = move |m: &mut Machine| {
        for i in 0..256u32 {
            m.mem.write_u32(la + 4 * i, i);
        }
    };
    let (_, scalar_m) = run_scalar(&kernel, &init);

    // Original DSA: dynamic range loops are not covered.
    let (_, m1, dsa1) = run_dsa(&kernel, DsaConfig::original(), &init);
    assert_same_memory(&scalar_m, &m1);
    assert_eq!(dsa1.stats().loops_vectorized, 0);
    assert_eq!(dsa1.census().count(LoopClass::DynamicRange), 1);

    // Extended DSA: vectorized.
    let (out2, m2, dsa2) = run_dsa(&kernel, DsaConfig::extended(), &init);
    assert_same_memory(&scalar_m, &m2);
    assert_eq!(dsa2.stats().loops_vectorized, 1);
    assert!(out2.timing.covered > 0);
    assert_eq!(dsa2.census().count(LoopClass::DynamicRange), 1);
}

#[test]
fn conditional_loop_gated_by_feature() {
    let mut kb = KernelBuilder::new(Variant::Scalar);
    let a = kb.alloc("a", DataType::I32, 200);
    let v = kb.alloc("v", DataType::I32, 200);
    let la = kb.layout().buf(a).base;
    kb.emit_loop(LoopIr {
        name: "cond".into(),
        trip: Trip::Const(200),
        elem: DataType::I32,
        body: Body::Select {
            cond_lhs: Expr::load(a.at(0)),
            cmp: CmpOp::Ge,
            cond_rhs: Expr::Imm(100),
            then_dst: v.at(0),
            then_expr: Expr::load(a.at(0)) + Expr::Imm(5),
            else_arm: Some((v.at(0), Expr::load(a.at(0)) * Expr::Imm(2))),
        },
        ..LoopIr::default()
    });
    kb.halt();
    let kernel = kb.finish();
    // Alternate between arms so both are observed quickly.
    let init = move |m: &mut Machine| {
        for i in 0..200u32 {
            m.mem.write_u32(la + 4 * i, if i % 2 == 0 { 150 } else { 3 });
        }
    };
    let (_, scalar_m) = run_scalar(&kernel, &init);

    let (_, m1, dsa1) = run_dsa(&kernel, DsaConfig::original(), &init);
    assert_same_memory(&scalar_m, &m1);
    assert_eq!(dsa1.stats().loops_vectorized, 0);
    assert_eq!(dsa1.census().count(LoopClass::Conditional), 1);

    let (out2, m2, dsa2) = run_dsa(&kernel, DsaConfig::extended(), &init);
    assert_same_memory(&scalar_m, &m2);
    assert_eq!(dsa2.stats().loops_vectorized, 1);
    assert!(out2.timing.covered > 0, "conditional iterations covered");
    assert!(dsa2.stats().array_map_accesses > 0);
    assert!(dsa2.stats().discarded_lanes > 0, "speculation discards unselected lanes");
}

#[test]
fn sentinel_loop_gated_by_feature_and_budget_learned() {
    let mut kb = KernelBuilder::new(Variant::Scalar);
    let src = kb.alloc("src", DataType::I8, 128);
    let dst = kb.alloc("dst", DataType::I8, 128);
    let ls = kb.layout().buf(src).base;
    // Run the sentinel loop twice (outer repetition in raw asm) so the
    // speculative range learned in run 1 is used in run 2.
    let outer = dsa_compiler::regs::PARAM[1];
    kb.asm_mut().mov_imm(outer, 2);
    let top = kb.asm_mut().here();
    kb.emit_loop(LoopIr {
        name: "sentinel".into(),
        trip: Trip::Sentinel { buf: src, value: 0 },
        elem: DataType::I8,
        body: Body::Map { dst: dst.at(0), expr: Expr::load(src.at(0)) + Expr::Imm(1) },
        ..LoopIr::default()
    });
    {
        let asm = kb.asm_mut();
        asm.sub_imm(outer, outer, 1);
        asm.cmp_imm(outer, 0);
        asm.b_to(dsa_isa::Cond::Ne, top);
        asm.halt();
    }
    let kernel = kb.finish();
    let init = move |m: &mut Machine| {
        for i in 0..40u32 {
            m.mem.write_u8(ls + i, 7);
        }
        // element 40 is 0 -> 40 iterations
    };
    let (_, scalar_m) = run_scalar(&kernel, &init);

    let (_, m1, dsa1) = run_dsa(&kernel, DsaConfig::extended(), &init);
    assert_same_memory(&scalar_m, &m1);
    assert_eq!(dsa1.stats().loops_vectorized, 0, "extended DSA lacks sentinel support");
    assert_eq!(dsa1.census().count(LoopClass::Sentinel), 1);

    let (_, m2, dsa2) = run_dsa(&kernel, DsaConfig::full(), &init);
    assert_same_memory(&scalar_m, &m2);
    assert!(dsa2.stats().loops_vectorized >= 2, "both executions vectorized");
    assert_eq!(dsa2.census().count(LoopClass::Sentinel), 1);
    assert!(dsa2.stats().stage_speculative > 0);
}

#[test]
fn partial_vectorization_for_bounded_dependency() {
    // v[i] = v[i-16] + b[i]: dependency distance 16 >= 4 lanes.
    let mut kb = KernelBuilder::new(Variant::Scalar);
    let b = kb.alloc("b", DataType::I32, 256);
    let v = kb.alloc("v", DataType::I32, 272);
    let (lb, lv) = (kb.layout().buf(b).base, kb.layout().buf(v).base);
    // Operate on v[16..272]: dst pointer offset +16 elements.
    kb.emit_loop(LoopIr {
        name: "recur16".into(),
        trip: Trip::Const(256),
        elem: DataType::I32,
        body: Body::Map {
            dst: v.at(16),
            expr: Expr::load(v.at(0)) + Expr::load(b.at(0)),
        },
        ..LoopIr::default()
    });
    kb.halt();
    let kernel = kb.finish();
    let init = move |m: &mut Machine| {
        for i in 0..16u32 {
            m.mem.write_u32(lv + 4 * i, 1);
        }
        for i in 0..256u32 {
            m.mem.write_u32(lb + 4 * i, i);
        }
    };
    let (_, scalar_m) = run_scalar(&kernel, &init);

    // Without partial vectorization: rejected (cross-iteration dep).
    let (_, m1, dsa1) = run_dsa(&kernel, DsaConfig::extended(), &init);
    assert_same_memory(&scalar_m, &m1);
    assert_eq!(dsa1.stats().loops_vectorized, 0);

    // Full DSA: partially vectorized in chunks of 16.
    let (_, m2, dsa2) = run_dsa(&kernel, DsaConfig::full(), &init);
    assert_same_memory(&scalar_m, &m2);
    assert_eq!(dsa2.stats().loops_vectorized, 1);
    assert!(dsa2.stats().partial_chunks >= 15, "chunks: {}", dsa2.stats().partial_chunks);
    assert_eq!(dsa2.census().count(LoopClass::Partial), 1);
}

#[test]
fn unit_distance_recurrence_never_vectorizes() {
    // v[i] = v[i-1] + b[i].
    let mut kb = KernelBuilder::new(Variant::Scalar);
    let b = kb.alloc("b", DataType::I32, 64);
    let v = kb.alloc("v", DataType::I32, 65);
    let lb = kb.layout().buf(b).base;
    kb.emit_loop(LoopIr {
        name: "recur1".into(),
        trip: Trip::Const(64),
        elem: DataType::I32,
        body: Body::Map { dst: v.at(1), expr: Expr::load(v.at(0)) + Expr::load(b.at(0)) },
        ..LoopIr::default()
    });
    kb.halt();
    let kernel = kb.finish();
    let init = move |m: &mut Machine| {
        for i in 0..64u32 {
            m.mem.write_u32(lb + 4 * i, 1);
        }
    };
    let (_, scalar_m) = run_scalar(&kernel, &init);
    let (_, m, dsa) = run_dsa(&kernel, DsaConfig::full(), &init);
    assert_same_memory(&scalar_m, &m);
    assert_eq!(dsa.stats().loops_vectorized, 0);
    assert_eq!(dsa.census().count(LoopClass::NonVectorizable), 1);
}

#[test]
fn function_loop_vectorized_by_original_dsa() {
    let mut kb = KernelBuilder::new(Variant::Scalar);
    let a = kb.alloc("a", DataType::I32, 120);
    let v = kb.alloc("v", DataType::I32, 120);
    let la = kb.layout().buf(a).base;
    let f = kb.define_function(|asm| {
        asm.add(regs::SCRATCH, regs::SCRATCH, regs::SCRATCH); // 2x
        asm.bx_lr();
    });
    kb.emit_loop(LoopIr {
        name: "func".into(),
        trip: Trip::Const(120),
        elem: DataType::I32,
        body: Body::Map { dst: v.at(0), expr: Expr::Call(f, Box::new(Expr::load(a.at(0)))) },
        ..LoopIr::default()
    });
    kb.halt();
    let kernel = kb.finish();
    let init = move |m: &mut Machine| {
        for i in 0..120u32 {
            m.mem.write_u32(la + 4 * i, i + 1);
        }
    };
    let (_, scalar_m) = run_scalar(&kernel, &init);
    let (_, m, dsa) = run_dsa(&kernel, DsaConfig::original(), &init);
    assert_same_memory(&scalar_m, &m);
    assert_eq!(dsa.stats().loops_vectorized, 1);
    assert_eq!(dsa.census().count(LoopClass::Function), 1);
}

#[test]
fn loop_nest_reuses_cache_across_entries() {
    // Outer loop (raw asm) re-enters an inner count loop 8 times with a
    // moving output row. Rows are deliberately NON-contiguous (one-row
    // holes) so nest fusion bails and every entry goes through the DSA
    // cache instead.
    let mut kb = KernelBuilder::new(Variant::Scalar);
    let a = kb.alloc("a", DataType::I32, 64);
    let c = kb.alloc("c", DataType::I32, 16 * 64);
    let la = kb.layout().buf(a).base;
    let lc = kb.layout().buf(c).base;
    let row = dsa_isa::Reg::R11; // PARAM[1] is r11
    let cnt = dsa_isa::Reg::R10;
    {
        let asm = kb.asm_mut();
        asm.mov_imm(cnt, 8);
        asm.mov_imm(row, lc as i32);
    }
    let top = kb.asm_mut().here();
    kb.emit_loop(LoopIr {
        name: "inner".into(),
        trip: Trip::Const(64),
        elem: DataType::I32,
        body: Body::Map { dst: c.at(0), expr: Expr::load(a.at(0)) + Expr::Imm(7) },
        ptr_overrides: vec![(c, row)],
        ..LoopIr::default()
    });
    {
        let asm = kb.asm_mut();
        asm.add_imm(row, row, 2 * 64 * 4); // skip a row: not fusable
        asm.sub_imm(cnt, cnt, 1);
        asm.cmp_imm(cnt, 0);
        asm.b_to(dsa_isa::Cond::Ne, top);
        asm.halt();
    }
    let kernel = kb.finish();
    let init = move |m: &mut Machine| {
        for i in 0..64u32 {
            m.mem.write_u32(la + 4 * i, i);
        }
    };
    let (_, scalar_m) = run_scalar(&kernel, &init);
    let (out, m, dsa) = run_dsa(&kernel, DsaConfig::original(), &init);
    assert_same_memory(&scalar_m, &m);
    let stats = dsa.stats();
    // Entry 1 is analysed and vectorized; entries 2-3 run scalar while
    // the (failing) nest-fusion probe observes the outer loop; entries
    // 4-8 vectorize instantly through the DSA cache.
    assert_eq!(stats.loops_vectorized, 6, "entries 1 and 4..8 vectorized");
    assert!(stats.dsa_cache_hits >= 5, "entries 4..8 hit the cache");
    assert!(out.timing.covered > 0);
    let census = dsa.census();
    assert_eq!(census.count(LoopClass::Count), 1);
    assert_eq!(census.count(LoopClass::Nest), 1);
}

#[test]
fn leftover_iterations_handled() {
    // 403 iterations: 100 chunks of 4 + 3 leftovers.
    let (kernel, la, lb, _) = count_kernel(403);
    let init = move |m: &mut Machine| {
        for i in 0..403u32 {
            m.mem.write_u32(la + 4 * i, i);
            m.mem.write_u32(lb + 4 * i, i);
        }
    };
    let (_, scalar_m) = run_scalar(&kernel, &init);
    let (_, m, dsa) = run_dsa(&kernel, DsaConfig::full(), &init);
    assert_same_memory(&scalar_m, &m);
    assert_eq!(dsa.stats().loops_vectorized, 1);
}

#[test]
fn detection_latency_is_small_fraction() {
    let (kernel, la, lb, _) = count_kernel(2000);
    let init = move |m: &mut Machine| {
        for i in 0..2000u32 {
            m.mem.write_u32(la + 4 * i, i);
            m.mem.write_u32(lb + 4 * i, i);
        }
    };
    let (out, _, dsa) = run_dsa(&kernel, DsaConfig::full(), &init);
    let frac = dsa.stats().detection_fraction(out.cycles);
    assert!(frac > 0.0 && frac < 0.10, "detection fraction {frac}");
}
