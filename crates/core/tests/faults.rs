//! Per-site fault-injection tests: every [`FaultSite`] gets at least one
//! test proving the full chain — the fault *fires*, the engine *detects*
//! it and degrades to scalar, and the final architectural state is
//! bit-identical to a scalar-only run of the same program.
//!
//! Sites whose detection spans executions (the DSA cache persists on the
//! engine, not the machine) share one `Dsa` across several fresh
//! simulator runs and compare [`Machine::arch_digest`] run by run; the
//! single-run sites go through the [`DifferentialOracle`] directly.

use dsa_compiler::{Body, CmpOp, DataType, Expr, KernelBuilder, LoopIr, Trip, Variant};
use dsa_core::{
    Dsa, DifferentialOracle, DsaConfig, FaultPlan, FaultSite, FaultState,
};
use dsa_cpu::{CpuConfig, Machine, NullHook, Simulator};
use dsa_isa::Program;

const FUEL: u64 = 10_000_000;

/// The smallest seed whose schedule fires `site` at its very first
/// opportunity, so tests do not depend on how many opportunities a
/// program offers.
fn seed_firing_first(site: FaultSite) -> u64 {
    (0..1024)
        .find(|&seed| FaultState::new(FaultPlan::only(seed, site)).fire(site))
        .expect("a third of all seeds fire at the first opportunity")
}

/// Digest after one scalar-only run (fresh machine).
fn scalar_digest(program: &Program, init: &dyn Fn(&mut Machine)) -> u64 {
    let mut sim = Simulator::new(program.clone(), CpuConfig::default());
    init(sim.machine_mut());
    sim.run_with_hook(FUEL, &mut NullHook).expect("scalar reference halts");
    sim.machine().arch_digest()
}

/// Digest after one DSA-attached run (fresh machine, shared engine).
fn dsa_digest(dsa: &mut Dsa, program: &Program, init: &dyn Fn(&mut Machine)) -> u64 {
    let mut sim = Simulator::new(program.clone(), CpuConfig::default());
    init(sim.machine_mut());
    sim.run_with_hook(FUEL, dsa).expect("DSA-attached run halts");
    sim.machine().arch_digest()
}

/// `v[i] = a[i] + b[i]` over `n` i32 elements — a plain count loop.
fn count_kernel(n: u32) -> (dsa_compiler::Kernel, impl Fn(&mut Machine)) {
    let mut kb = KernelBuilder::new(Variant::Scalar);
    let a = kb.alloc("a", DataType::I32, n);
    let b = kb.alloc("b", DataType::I32, n);
    let v = kb.alloc("v", DataType::I32, n);
    let (la, lb) = (kb.layout().buf(a).base, kb.layout().buf(b).base);
    kb.emit_loop(LoopIr {
        name: "count".into(),
        trip: Trip::Const(n),
        elem: DataType::I32,
        body: Body::Map { dst: v.at(0), expr: Expr::load(a.at(0)) + Expr::load(b.at(0)) },
        ..LoopIr::default()
    });
    kb.halt();
    (kb.finish(), move |m: &mut Machine| {
        for i in 0..n {
            m.mem.write_u32(la + 4 * i, i.wrapping_mul(3));
            m.mem.write_u32(lb + 4 * i, i.wrapping_mul(5) ^ 0x55);
        }
    })
}

/// A zero-terminated byte copy — a sentinel loop over a 40-byte string.
fn sentinel_kernel(n: u32) -> (dsa_compiler::Kernel, impl Fn(&mut Machine)) {
    let mut kb = KernelBuilder::new(Variant::Scalar);
    let src = kb.alloc("src", DataType::I8, n);
    let dst = kb.alloc("dst", DataType::I8, n);
    let ls = kb.layout().buf(src).base;
    kb.emit_loop(LoopIr {
        name: "sentinel".into(),
        trip: Trip::Sentinel { buf: src, value: 0 },
        elem: DataType::I8,
        body: Body::Map { dst: dst.at(0), expr: Expr::load(src.at(0)) + Expr::Imm(1) },
        ..LoopIr::default()
    });
    kb.halt();
    (kb.finish(), move |m: &mut Machine| {
        for i in 0..n {
            m.mem.write_u8(ls + i, if i < 40 { 7 + (i % 20) as u8 } else { 0 });
        }
    })
}

/// `v[i] = a[i] >= 0 ? 2*a[i] : a[i]+1` — a conditional loop whose
/// iterations all take the same path (so every iteration shares one
/// Array-Map arm).
fn conditional_kernel(n: u32) -> (dsa_compiler::Kernel, impl Fn(&mut Machine)) {
    let mut kb = KernelBuilder::new(Variant::Scalar);
    let a = kb.alloc("a", DataType::I32, n);
    let v = kb.alloc("v", DataType::I32, n);
    let la = kb.layout().buf(a).base;
    kb.emit_loop(LoopIr {
        name: "cond".into(),
        trip: Trip::Const(n),
        elem: DataType::I32,
        body: Body::Select {
            cond_lhs: Expr::load(a.at(0)),
            cmp: CmpOp::Ge,
            cond_rhs: Expr::Imm(0),
            then_dst: v.at(0),
            then_expr: Expr::load(a.at(0)) + Expr::load(a.at(0)),
            else_arm: Some((v.at(0), Expr::load(a.at(0)) + Expr::Imm(1))),
        },
        ..LoopIr::default()
    });
    kb.halt();
    (kb.finish(), move |m: &mut Machine| {
        for i in 0..n {
            m.mem.write_u32(la + 4 * i, 10 + i);
        }
    })
}

/// Two count loops back to back, so a skipped rollback flush at the end
/// of the first is caught by the probe while the second runs.
fn two_loop_kernel(n: u32) -> (dsa_compiler::Kernel, impl Fn(&mut Machine)) {
    let mut kb = KernelBuilder::new(Variant::Scalar);
    let a = kb.alloc("a", DataType::I32, n);
    let v = kb.alloc("v", DataType::I32, n);
    let w = kb.alloc("w", DataType::I32, n);
    let la = kb.layout().buf(a).base;
    for (name, dst, add) in [("first", v, 1), ("second", w, 2)] {
        kb.emit_loop(LoopIr {
            name: name.into(),
            trip: Trip::Const(n),
            elem: DataType::I32,
            body: Body::Map { dst: dst.at(0), expr: Expr::load(a.at(0)) + Expr::Imm(add) },
            ..LoopIr::default()
        });
    }
    kb.halt();
    (kb.finish(), move |m: &mut Machine| {
        for i in 0..n {
            m.mem.write_u32(la + 4 * i, i ^ 0xA5);
        }
    })
}

#[test]
fn corrupt_template_is_caught_on_the_cache_hit() {
    // Run 1 stores the template; run 2's probe hit reads a corrupted
    // copy, which `LoopTemplate::validate` must reject before any lane
    // math runs.
    let (kernel, init) = count_kernel(256);
    let seed = seed_firing_first(FaultSite::CorruptTemplate);
    let plan = FaultPlan::only(seed, FaultSite::CorruptTemplate);
    let mut dsa = Dsa::new(DsaConfig::full().with_faults(plan));
    for run in 0..2 {
        let got = dsa_digest(&mut dsa, &kernel.program, &init);
        let want = scalar_digest(&kernel.program, &init);
        assert_eq!(got, want, "state diverged on run {run}");
    }
    let s = dsa.stats();
    assert!(s.faults_injected >= 1, "fault never fired: {s:?}");
    assert!(s.degradations >= 1, "corruption was not detected: {s:?}");
    assert!(dsa.poisoned().is_none(), "detection must degrade, not poison");
}

#[test]
fn lying_sentinel_trip_count_is_caught_before_the_next_launch() {
    // Run 1 vectorizes the sentinel loop and stores a wildly inflated
    // speculative range at loop exit; run 2's cache hit must refuse to
    // launch from it and degrade the loop instead.
    let (kernel, init) = sentinel_kernel(128);
    let seed = seed_firing_first(FaultSite::LieSentinelTrip);
    let plan = FaultPlan::only(seed, FaultSite::LieSentinelTrip);
    let mut dsa = Dsa::new(DsaConfig::full().with_faults(plan));
    for run in 0..3 {
        let got = dsa_digest(&mut dsa, &kernel.program, &init);
        let want = scalar_digest(&kernel.program, &init);
        assert_eq!(got, want, "state diverged on run {run}");
    }
    let s = dsa.stats();
    assert!(s.faults_injected >= 1, "fault never fired: {s:?}");
    assert!(s.degradations >= 1, "inflated range was not detected: {s:?}");
    assert!(dsa.poisoned().is_none());
}

#[test]
fn flipped_array_map_condition_is_caught_during_mapping() {
    // Every iteration takes the same path, so a flipped path bit
    // produces an arm whose PC set matches an existing arm with a
    // different path — the map-lied consistency check.
    let (kernel, init) = conditional_kernel(256);
    let seed = seed_firing_first(FaultSite::FlipArrayMapCondition);
    let plan = FaultPlan::only(seed, FaultSite::FlipArrayMapCondition);
    let oracle = DifferentialOracle::new(FUEL);
    let report = oracle.check(&kernel.program, DsaConfig::full().with_faults(plan), &init);
    assert!(report.holds(), "{report}");
    assert!(report.stats.faults_injected >= 1, "fault never fired: {:?}", report.stats);
    assert!(report.stats.degradations >= 1, "lie was not detected: {:?}", report.stats);
    assert!(report.poisoned.is_none());
}

#[test]
fn dropped_vcache_entry_is_caught_during_collection() {
    let (kernel, init) = count_kernel(256);
    let seed = seed_firing_first(FaultSite::DropVcacheEntry);
    let plan = FaultPlan::only(seed, FaultSite::DropVcacheEntry);
    let oracle = DifferentialOracle::new(FUEL);
    let report = oracle.check(&kernel.program, DsaConfig::full().with_faults(plan), &init);
    assert!(report.holds(), "{report}");
    assert!(report.stats.faults_injected >= 1, "fault never fired: {:?}", report.stats);
    assert!(report.stats.degradations >= 1, "lost entry was not detected: {:?}", report.stats);
    assert!(report.poisoned.is_none());
}

#[test]
fn skipped_rollback_flush_is_recovered_by_the_probe() {
    // The first loop's vector execution ends without the rollback flush;
    // the probe's stale-coverage self-check must recover it while the
    // second loop runs.
    let (kernel, init) = two_loop_kernel(256);
    let seed = seed_firing_first(FaultSite::SkipRollbackFlush);
    let plan = FaultPlan::only(seed, FaultSite::SkipRollbackFlush);
    let oracle = DifferentialOracle::new(FUEL);
    let report = oracle.check(&kernel.program, DsaConfig::full().with_faults(plan), &init);
    assert!(report.holds(), "{report}");
    assert!(report.stats.faults_injected >= 1, "fault never fired: {:?}", report.stats);
    assert!(report.stats.degradations >= 1, "stale coverage was not recovered: {:?}", report.stats);
    assert!(report.poisoned.is_none());
}

#[test]
fn all_sites_armed_at_once_still_hold_the_oracle() {
    // The paper-style belt-and-braces sweep: every site armed, several
    // seeds, over a kernel mix exercising count, conditional and
    // sentinel loops — state must stay bit-identical throughout.
    for seed in [0u64, 1, 7, 0xDEAD_BEEF] {
        let plan = FaultPlan::all(seed);
        let oracle = DifferentialOracle::new(FUEL);
        let (count, count_init) = count_kernel(256);
        let (cond, cond_init) = conditional_kernel(256);
        let (sent, sent_init) = sentinel_kernel(128);
        for (program, init) in [
            (&count.program, &count_init as &dyn Fn(&mut Machine)),
            (&cond.program, &cond_init),
            (&sent.program, &sent_init),
        ] {
            let report = oracle.check(program, DsaConfig::full().with_faults(plan), init);
            assert!(report.holds(), "seed {seed}: {report}");
        }
    }
}

#[test]
fn fault_free_runs_report_no_degradations() {
    // Control: the same kernels without a fault plan must not degrade —
    // otherwise the counters above prove nothing.
    let (kernel, init) = count_kernel(256);
    let oracle = DifferentialOracle::new(FUEL);
    let report = oracle.check(&kernel.program, DsaConfig::full(), &init);
    assert!(report.holds(), "{report}");
    assert_eq!(report.stats.faults_injected, 0);
    assert_eq!(report.stats.degradations, 0);
    assert_eq!(report.stats.poison_events, 0);
    assert!(report.stats.loops_vectorized > 0, "the control loop must actually vectorize");
}
