//! Golden snapshot of the columnar trace encoding: the same
//! deterministic two-run scenario as `trace_golden`, encoded as
//! `dsa-tracebin/v1`, must reproduce a checked-in binary byte for byte.
//!
//! The snapshot pins the *wire format* — magic, block layout, column
//! order, varint/delta choices, string-table numbering — so a change to
//! the encoder shows up as a failed diff, not as archived traces that
//! newer readers silently misparse. It also pins the headline claim of
//! the format: the binary twin stays at least 5x smaller than the JSONL
//! document for the same event stream, and every CRC-guarded block
//! rejects single-bit corruption instead of decoding garbage.
//!
//! Regenerate deliberately with:
//!
//! ```text
//! DSA_BLESS=1 cargo test -p dsa-core --test tracebin_golden
//! ```

use dsa_compiler::{Body, DataType, Expr, KernelBuilder, LoopIr, Trip, Variant};
use dsa_core::{Dsa, DsaConfig};
use dsa_cpu::{CpuConfig, Machine, Simulator};
use dsa_trace::{header_line, Collector, Event, Shared};

const FUEL: u64 = 10_000_000;

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/count_trace.trcb")
}

/// `v[i] = a[i] + b[i]` over `n` i32 elements — the same kernel as the
/// JSONL golden, so the two snapshots pin the same event stream.
fn count_kernel(n: u32) -> (dsa_compiler::Kernel, impl Fn(&mut Machine)) {
    let mut kb = KernelBuilder::new(Variant::Scalar);
    let a = kb.alloc("a", DataType::I32, n);
    let b = kb.alloc("b", DataType::I32, n);
    let v = kb.alloc("v", DataType::I32, n);
    let (la, lb) = (kb.layout().buf(a).base, kb.layout().buf(b).base);
    kb.emit_loop(LoopIr {
        name: "count".into(),
        trip: Trip::Const(n),
        elem: DataType::I32,
        body: Body::Map { dst: v.at(0), expr: Expr::load(a.at(0)) + Expr::load(b.at(0)) },
        ..LoopIr::default()
    });
    kb.halt();
    (kb.finish(), move |m: &mut Machine| {
        for i in 0..n {
            m.mem.write_u32(la + 4 * i, i.wrapping_mul(3));
            m.mem.write_u32(lb + 4 * i, i.wrapping_mul(5) ^ 0x55);
        }
    })
}

/// The snapshot scenario's event stream: two runs sharing one engine
/// (run 2 hits the DSA cache).
fn traced_events() -> Vec<Event> {
    let (kernel, init) = count_kernel(64);
    let sink = Shared::new(Collector::new());
    let mut dsa = Dsa::new(DsaConfig::full().with_trace());
    dsa.attach_sink(sink.clone());
    for run in 0..2 {
        let mut sim = Simulator::new(kernel.program.clone(), CpuConfig::default());
        init(sim.machine_mut());
        let mut boundary = sink.clone();
        let out = sim
            .run_traced(FUEL, &mut dsa, &mut boundary)
            .unwrap_or_else(|e| panic!("run {run} failed: {e}"));
        assert!(out.halted, "run {run} hit the watchdog");
    }
    dsa.finish_trace();
    sink.with(|c| c.events.clone())
}

fn jsonl_twin(events: &[Event]) -> String {
    let mut doc = header_line();
    doc.push('\n');
    for ev in events {
        doc.push_str(&ev.to_json_line());
        doc.push('\n');
    }
    doc
}

#[test]
fn columnar_encoding_matches_golden_snapshot() {
    let events = traced_events();
    let bytes = dsa_trace::encode(&events);

    let path = golden_path();
    if std::env::var_os("DSA_BLESS").is_some() {
        std::fs::write(&path, &bytes).expect("bless golden binary trace");
        return;
    }
    let golden = std::fs::read(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); run DSA_BLESS=1 cargo test -p dsa-core \
             --test tracebin_golden",
            path.display()
        )
    });
    if bytes != golden {
        let first_diff = bytes
            .iter()
            .zip(golden.iter())
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| bytes.len().min(golden.len()));
        panic!(
            "columnar encoding drifted from golden snapshot: {} bytes now vs {} blessed, \
             first difference at offset {first_diff}. If the wire format changed \
             deliberately, bump BIN_SCHEMA and re-bless with DSA_BLESS=1.",
            bytes.len(),
            golden.len()
        );
    }

    // Decoding the blessed bytes must reproduce the live event stream.
    let decoded = dsa_trace::decode(&golden).expect("golden must decode");
    assert_eq!(decoded, events, "golden bytes must round-trip to the live stream");
}

#[test]
fn columnar_golden_is_at_least_5x_smaller_than_jsonl() {
    let events = traced_events();
    let binary = dsa_trace::encode(&events).len();
    let jsonl = jsonl_twin(&events).len();
    assert!(
        jsonl >= 5 * binary,
        "compression claim regressed: {binary} binary bytes vs {jsonl} JSONL bytes \
         ({:.1}x, need >= 5x)",
        jsonl as f64 / binary as f64
    );
}

#[test]
fn every_single_bit_flip_is_rejected() {
    let events = traced_events();
    let golden = dsa_trace::encode(&events);
    let mut undetected = Vec::new();
    for byte in 0..golden.len() {
        for bit in 0..8 {
            let mut corrupt = golden.clone();
            corrupt[byte] ^= 1 << bit;
            match dsa_trace::decode(&corrupt) {
                Err(_) => {}
                // A flip that still decodes must at least not silently
                // alter the stream (it never happens for this golden,
                // but the invariant we insist on is "no garbage").
                Ok(decoded) if decoded == events => undetected.push((byte, bit)),
                Ok(_) => panic!(
                    "bit flip at byte {byte} bit {bit} decoded to a DIFFERENT stream \
                     without an error — CRC guard is broken"
                ),
            }
        }
    }
    assert!(
        undetected.is_empty(),
        "{} bit flips decoded back to the original stream (first: {:?}) — \
         corruption should not be a no-op",
        undetected.len(),
        undetected.first()
    );
}
