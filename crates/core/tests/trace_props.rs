//! Property tests over the telemetry stream: the typed event stream and
//! the [`DsaStats`] counters are two independently-maintained views of
//! one execution, and they must agree *exactly* — for every program
//! shape, problem size, repeat count and fault schedule.
//!
//! The central invariant is the cycle ledger: every
//! `detection_cycles += X` in the engine pairs with exactly one event
//! carrying `dsa_cycles: X`, so the stream's charge column sums to the
//! counter. The rest are per-kind tallies (detections, vectorizations,
//! stage activations, CIDP pairs, verification-cache traffic, faults,
//! degradations) plus the lifecycle ordering property that a loop can
//! only be vectorized after it was detected.

use dsa_compiler::{Body, CmpOp, DataType, Expr, KernelBuilder, LoopIr, Trip, Variant};
use dsa_core::{Dsa, DsaConfig, DsaStats, FaultPlan, FaultSite};
use dsa_cpu::{CpuConfig, Machine, Simulator};
use dsa_trace::{CacheKind, Collector, Event, Shared, Stage};
use proptest::prelude::*;

const FUEL: u64 = 10_000_000;

#[derive(Debug, Clone, Copy)]
enum Shape {
    Count,
    Conditional,
    Sentinel,
    TwoLoops,
}

type Init = Box<dyn Fn(&mut Machine)>;

fn kernel(shape: Shape, n: u32) -> (dsa_compiler::Kernel, Init) {
    let mut kb = KernelBuilder::new(Variant::Scalar);
    match shape {
        Shape::Count => {
            let a = kb.alloc("a", DataType::I32, n);
            let v = kb.alloc("v", DataType::I32, n);
            let la = kb.layout().buf(a).base;
            kb.emit_loop(LoopIr {
                name: "count".into(),
                trip: Trip::Const(n),
                elem: DataType::I32,
                body: Body::Map { dst: v.at(0), expr: Expr::load(a.at(0)) + Expr::Imm(7) },
                ..LoopIr::default()
            });
            kb.halt();
            (
                kb.finish(),
                Box::new(move |m: &mut Machine| {
                    for i in 0..n {
                        m.mem.write_u32(la + 4 * i, i.wrapping_mul(3));
                    }
                }),
            )
        }
        Shape::Conditional => {
            let a = kb.alloc("a", DataType::I32, n);
            let v = kb.alloc("v", DataType::I32, n);
            let la = kb.layout().buf(a).base;
            kb.emit_loop(LoopIr {
                name: "cond".into(),
                trip: Trip::Const(n),
                elem: DataType::I32,
                body: Body::Select {
                    cond_lhs: Expr::load(a.at(0)),
                    cmp: CmpOp::Ge,
                    cond_rhs: Expr::Imm(0),
                    then_dst: v.at(0),
                    then_expr: Expr::load(a.at(0)) + Expr::load(a.at(0)),
                    else_arm: Some((v.at(0), Expr::load(a.at(0)) + Expr::Imm(1))),
                },
                ..LoopIr::default()
            });
            kb.halt();
            (
                kb.finish(),
                Box::new(move |m: &mut Machine| {
                    for i in 0..n {
                        // Mixed signs so both Array-Map arms are live.
                        let v = if i % 3 == 0 { -(i as i32) } else { 10 + i as i32 };
                        m.mem.write_u32(la + 4 * i, v as u32);
                    }
                }),
            )
        }
        Shape::Sentinel => {
            let src = kb.alloc("src", DataType::I8, n + 1);
            let dst = kb.alloc("dst", DataType::I8, n + 1);
            let ls = kb.layout().buf(src).base;
            kb.emit_loop(LoopIr {
                name: "sentinel".into(),
                trip: Trip::Sentinel { buf: src, value: 0 },
                elem: DataType::I8,
                body: Body::Map { dst: dst.at(0), expr: Expr::load(src.at(0)) + Expr::Imm(1) },
                ..LoopIr::default()
            });
            kb.halt();
            (
                kb.finish(),
                Box::new(move |m: &mut Machine| {
                    for i in 0..n {
                        m.mem.write_u8(ls + i, 7 + (i % 20) as u8);
                    }
                    m.mem.write_u8(ls + n, 0);
                }),
            )
        }
        Shape::TwoLoops => {
            let a = kb.alloc("a", DataType::I32, n);
            let v = kb.alloc("v", DataType::I32, n);
            let w = kb.alloc("w", DataType::I32, n);
            let la = kb.layout().buf(a).base;
            for (name, dst, add) in [("first", v, 1), ("second", w, 2)] {
                kb.emit_loop(LoopIr {
                    name: name.into(),
                    trip: Trip::Const(n),
                    elem: DataType::I32,
                    body: Body::Map { dst: dst.at(0), expr: Expr::load(a.at(0)) + Expr::Imm(add) },
                    ..LoopIr::default()
                });
            }
            kb.halt();
            (
                kb.finish(),
                Box::new(move |m: &mut Machine| {
                    for i in 0..n {
                        m.mem.write_u32(la + 4 * i, i ^ 0xA5);
                    }
                }),
            )
        }
    }
}

/// Runs `shape` × `runs` through one traced engine; returns the final
/// stats and the complete event stream.
fn traced(shape: Shape, n: u32, runs: u32, plan: Option<FaultPlan>) -> (DsaStats, Vec<Event>) {
    let (kernel, init) = kernel(shape, n);
    let mut cfg = DsaConfig::full().with_trace();
    if let Some(plan) = plan {
        cfg = cfg.with_faults(plan);
    }
    let sink = Shared::new(Collector::new());
    let mut dsa = Dsa::new(cfg);
    dsa.attach_sink(sink.clone());
    for _ in 0..runs {
        let mut sim = Simulator::new(kernel.program.clone(), CpuConfig::default());
        init(sim.machine_mut());
        let mut boundary = sink.clone();
        sim.run_traced(FUEL, &mut dsa, &mut boundary).expect("halts");
    }
    dsa.finish_trace();
    (dsa.stats(), sink.with(|c| c.events.clone()))
}

fn count_type(events: &[Event], name: &str) -> u64 {
    events.iter().filter(|e| e.type_name() == name).count() as u64
}

fn check_stream_agrees(stats: &DsaStats, events: &[Event]) {
    // Per-kind tallies.
    assert_eq!(stats.loops_detected, count_type(events, "loop-detected"));
    assert_eq!(stats.loops_vectorized, count_type(events, "loop-vectorized"));
    assert_eq!(stats.faults_injected, count_type(events, "fault-injected"));
    assert_eq!(
        stats.degradations,
        count_type(events, "loop-rolled-back") + count_type(events, "engine-poisoned"),
        "every degradation is a rollback or a poisoning"
    );
    assert_eq!(stats.poison_events, count_type(events, "engine-poisoned"));
    assert_eq!(stats.partial_chunks, count_type(events, "partial-chunk"));

    // Stage counters, per stage.
    let stage_count = |s: Stage| {
        events
            .iter()
            .filter(|e| matches!(e, Event::StageActivated { stage, .. } if *stage == s))
            .count() as u64
    };
    assert_eq!(stats.stage_loop_detection, stage_count(Stage::LoopDetection));
    assert_eq!(stats.stage_data_collection, stage_count(Stage::DataCollection));
    assert_eq!(stats.stage_dependency_analysis, stage_count(Stage::DependencyAnalysis));
    assert_eq!(stats.stage_store_id_execution, stage_count(Stage::StoreIdExecution));
    assert_eq!(stats.stage_mapping, stage_count(Stage::Mapping));
    assert_eq!(stats.stage_speculative, stage_count(Stage::SpeculativeExecution));
    assert_eq!(stats.stage_activations(), count_type(events, "stage-activated"));

    // The cycle ledger: the stream's charges sum to the counter.
    let charged: u64 = events
        .iter()
        .map(|e| match *e {
            Event::StageActivated { dsa_cycles, .. }
            | Event::CacheAccess { dsa_cycles, .. }
            | Event::DependencyVerdict { dsa_cycles, .. }
            | Event::PartialChunk { dsa_cycles, .. } => dsa_cycles,
            _ => 0,
        })
        .sum();
    assert_eq!(
        stats.detection_cycles, charged,
        "every detection_cycles charge must appear on exactly one event"
    );

    // CIDP work and Verification-Cache traffic.
    let pairs: u64 = events
        .iter()
        .map(|e| match *e {
            Event::DependencyVerdict { pairs, .. } => pairs as u64,
            _ => 0,
        })
        .sum();
    assert_eq!(stats.cidp_evaluations, pairs);
    let vcache: u64 = events
        .iter()
        .map(|e| match *e {
            Event::CacheAccess { cache: CacheKind::Verification, count, .. } => count as u64,
            _ => 0,
        })
        .sum();
    assert_eq!(stats.vcache_accesses, vcache);

    // Covered iterations.
    let iters: u64 = events
        .iter()
        .map(|e| match *e {
            Event::LoopFinished { iters, .. } => iters as u64,
            _ => 0,
        })
        .sum();
    assert_eq!(stats.covered_iterations, iters);

    // Lifecycle ordering: a loop is vectorized only after it was
    // detected (same loop id, earlier in the stream).
    let mut seen = std::collections::HashSet::new();
    for e in events {
        match *e {
            Event::LoopDetected { loop_id, .. } => {
                seen.insert(loop_id);
            }
            Event::LoopVectorized { loop_id, .. } => {
                assert!(
                    seen.contains(&loop_id),
                    "loop {loop_id:#x} vectorized before any detection"
                );
            }
            _ => {}
        }
    }
}

fn shape_strategy() -> impl Strategy<Value = Shape> {
    prop_oneof![
        Just(Shape::Count),
        Just(Shape::Conditional),
        Just(Shape::Sentinel),
        Just(Shape::TwoLoops),
    ]
}

fn plan_strategy() -> impl Strategy<Value = Option<FaultPlan>> {
    prop_oneof![
        Just(None),
        (any::<u64>(), 0usize..FaultSite::ALL.len())
            .prop_map(|(seed, i)| Some(FaultPlan::only(seed, FaultSite::ALL[i]))),
        any::<u64>().prop_map(|seed| Some(FaultPlan::all(seed))),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn stream_and_stats_agree(
        shape in shape_strategy(),
        n in 4u32..200,
        runs in 1u32..=2,
        plan in plan_strategy(),
    ) {
        let (stats, events) = traced(shape, n, runs, plan);
        check_stream_agrees(&stats, &events);

        // Run brackets: one started/finished pair per simulator run
        // (the engine survives across runs, the machine does not).
        prop_assert_eq!(count_type(&events, "run-started"), runs as u64);
        prop_assert_eq!(count_type(&events, "run-finished"), runs as u64);

        // Fault-free control: no corruption events of any kind.
        if plan.is_none() {
            prop_assert_eq!(stats.faults_injected, 0);
            prop_assert_eq!(count_type(&events, "fault-injected"), 0);
        }
    }
}

#[test]
fn vectorizing_run_emits_the_full_lifecycle() {
    // Deterministic anchor next to the property: a plain count loop at a
    // comfortable size detects, classifies, vectorizes and finishes.
    let (stats, events) = traced(Shape::Count, 128, 1, None);
    assert!(stats.loops_vectorized > 0, "control loop must vectorize: {stats:?}");
    for kind in ["loop-detected", "loop-classified", "loop-vectorized", "loop-finished"] {
        assert!(count_type(&events, kind) > 0, "missing {kind} in {}", events.len());
    }
    check_stream_agrees(&stats, &events);
}
