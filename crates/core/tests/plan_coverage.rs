//! Plan-generation coverage properties: the SIMD work the DSA builds
//! must touch exactly the iterations it claims to cover (SingleElements)
//! or a lane-aligned superset (Overlapping / LargerArrays), for every
//! element type and iteration count.

use dsa_core::{build_plan, LeftoverPolicy, LoopClass, LoopTemplate, OpMix, StreamTemplate};
use dsa_isa::{Instr, InstrClass};
use proptest::prelude::*;
use std::collections::BTreeSet;

fn template_for(elem_bytes: u8, float: bool) -> LoopTemplate {
    LoopTemplate {
        class: LoopClass::Count,
        end_pc: 0,
        callee_range: None,
        exit_check_pc: None,
        elem_bytes,
        float,
        streams: vec![
            StreamTemplate { pc: 1, occ: 0, is_write: false, bytes: elem_bytes, gap: elem_bytes as i64 },
            StreamTemplate { pc: 2, occ: 0, is_write: true, bytes: elem_bytes, gap: elem_bytes as i64 },
        ],
        ops: OpMix { alu: 1, mul: 1, shift: 0 },
        arms: Vec::new(),
        partial_distance: None,
        spec_range: 0,
        trip_imm: None,
        cover_range: None,
        fused_inner_trip: None,
    }
}

/// Collects the set of element indices written by the plan's stores.
fn stored_elements(ops: &[dsa_cpu::InjectedOp], base: u32, elem: u32) -> BTreeSet<u32> {
    let mut out = BTreeSet::new();
    for op in ops {
        match op.instr {
            Instr::Vst1 { et, .. } => {
                let addr = op.addr.expect("store has address");
                let lanes = et.lanes();
                let first = (addr - base) / elem;
                for l in 0..lanes {
                    out.insert(first + l);
                }
            }
            Instr::Vst1Lane { .. } => {
                let addr = op.addr.expect("store has address");
                out.insert((addr - base) / elem);
            }
            _ => {}
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn single_elements_covers_exactly(
        elem_sel in 0u8..3,
        iterations in 1u32..200,
    ) {
        let (elem_bytes, float) = [(1, false), (4, false), (4, true)][elem_sel as usize];
        let t = template_for(elem_bytes, float);
        let base = 0x4000u32;
        let streams: Vec<_> = t.streams.iter().map(|&s| (s, base)).collect();
        let plan = build_plan(&t, &streams, t.ops, iterations, LeftoverPolicy::SingleElements);
        let got = stored_elements(&plan.ops, base, elem_bytes as u32);
        let want: BTreeSet<u32> = (0..iterations).collect();
        prop_assert_eq!(got, want, "elem {} iters {}", elem_bytes, iterations);
        prop_assert_eq!(plan.discarded_lanes, 0);
    }

    #[test]
    fn overlap_and_padding_cover_supersets(
        elem_sel in 0u8..3,
        iterations in 1u32..200,
        policy_sel in 0u8..2,
    ) {
        let (elem_bytes, float) = [(1, false), (4, false), (4, true)][elem_sel as usize];
        let policy = if policy_sel == 0 {
            LeftoverPolicy::Overlapping
        } else {
            LeftoverPolicy::LargerArrays
        };
        let t = template_for(elem_bytes, float);
        let lanes = t.lanes();
        let base = 0x4000u32;
        let streams: Vec<_> = t.streams.iter().map(|&s| (s, base)).collect();
        let plan = build_plan(&t, &streams, t.ops, iterations, policy);
        let got = stored_elements(&plan.ops, base, elem_bytes as u32);
        let want: BTreeSet<u32> = (0..iterations).collect();
        prop_assert!(
            got.is_superset(&want),
            "{policy:?} must cover all iterations: missing {:?}",
            want.difference(&got).take(4).collect::<Vec<_>>()
        );
        match policy {
            // Overlapping never goes past the last element.
            LeftoverPolicy::Overlapping if iterations >= lanes => {
                prop_assert!(got.iter().max() < Some(&iterations));
            }
            // LargerArrays pads to at most one extra vector.
            LeftoverPolicy::LargerArrays => {
                prop_assert!(*got.iter().max().expect("non-empty") < iterations + lanes);
            }
            _ => {}
        }
        // Extra work is bounded by one vector of lanes.
        prop_assert!(got.len() as u32 <= iterations + lanes);
    }

    #[test]
    fn op_counts_scale_linearly(iterations in 4u32..400) {
        let t = template_for(4, false);
        let base = 0x8000u32;
        let streams: Vec<_> = t.streams.iter().map(|&s| (s, base)).collect();
        let plan = build_plan(&t, &streams, t.ops, iterations, LeftoverPolicy::Auto);
        let chunks = iterations / t.lanes();
        let loads =
            plan.ops.iter().filter(|o| o.instr.class() == InstrClass::VecLoad).count() as u32;
        // One load stream: one vld1 (or lane load) per chunk / leftover.
        prop_assert!(loads >= chunks);
        prop_assert!(loads <= chunks + t.lanes());
    }
}
