//! Golden snapshot of the telemetry stream: a deterministic kernel run
//! twice through one engine (run 2 hits the DSA cache) must reproduce a
//! checked-in `dsa-trace/v1` JSONL document byte for byte.
//!
//! The snapshot pins the *observable contract* — event vocabulary, field
//! names, ordering and every cycle number — so an accidental change to
//! emission order or latency accounting shows up as a readable diff, not
//! a silent drift. Regenerate deliberately with:
//!
//! ```text
//! DSA_BLESS=1 cargo test -p dsa-core --test trace_golden
//! ```

use dsa_compiler::{Body, DataType, Expr, KernelBuilder, LoopIr, Trip, Variant};
use dsa_core::{Dsa, DsaConfig};
use dsa_cpu::{CpuConfig, Machine, Simulator};
use dsa_trace::{header_line, validate_document, Collector, Shared};

const FUEL: u64 = 10_000_000;

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/count_trace.jsonl")
}

/// `v[i] = a[i] + b[i]` over `n` i32 elements — a plain count loop with
/// fully deterministic init.
fn count_kernel(n: u32) -> (dsa_compiler::Kernel, impl Fn(&mut Machine)) {
    let mut kb = KernelBuilder::new(Variant::Scalar);
    let a = kb.alloc("a", DataType::I32, n);
    let b = kb.alloc("b", DataType::I32, n);
    let v = kb.alloc("v", DataType::I32, n);
    let (la, lb) = (kb.layout().buf(a).base, kb.layout().buf(b).base);
    kb.emit_loop(LoopIr {
        name: "count".into(),
        trip: Trip::Const(n),
        elem: DataType::I32,
        body: Body::Map { dst: v.at(0), expr: Expr::load(a.at(0)) + Expr::load(b.at(0)) },
        ..LoopIr::default()
    });
    kb.halt();
    (kb.finish(), move |m: &mut Machine| {
        for i in 0..n {
            m.mem.write_u32(la + 4 * i, i.wrapping_mul(3));
            m.mem.write_u32(lb + 4 * i, i.wrapping_mul(5) ^ 0x55);
        }
    })
}

/// The full JSONL document of the snapshot scenario: header line plus
/// every event from two runs sharing one engine.
fn traced_document() -> String {
    let (kernel, init) = count_kernel(64);
    let sink = Shared::new(Collector::new());
    let mut dsa = Dsa::new(DsaConfig::full().with_trace());
    dsa.attach_sink(sink.clone());
    for run in 0..2 {
        let mut sim = Simulator::new(kernel.program.clone(), CpuConfig::default());
        init(sim.machine_mut());
        let mut boundary = sink.clone();
        let out = sim
            .run_traced(FUEL, &mut dsa, &mut boundary)
            .unwrap_or_else(|e| panic!("run {run} failed: {e}"));
        assert!(out.halted, "run {run} hit the watchdog");
    }
    dsa.finish_trace();
    let mut doc = header_line();
    doc.push('\n');
    sink.with(|c| {
        for ev in &c.events {
            doc.push_str(&ev.to_json_line());
            doc.push('\n');
        }
    });
    doc
}

#[test]
fn traced_run_is_deterministic() {
    assert_eq!(traced_document(), traced_document(), "same program, same engine, same trace");
}

#[test]
fn golden_document_is_schema_valid() {
    let doc = traced_document();
    let n = validate_document(&doc).unwrap_or_else(|(line, msg)| panic!("line {line}: {msg}"));
    // Two runs of a vectorizing count loop produce a non-trivial stream:
    // brackets, detection, stage activations, cache traffic, a cache hit.
    assert!(n >= 20, "suspiciously small stream: {n} records");
}

#[test]
fn golden_trace_matches_snapshot() {
    let doc = traced_document();
    let path = golden_path();
    if std::env::var("DSA_BLESS").is_ok_and(|v| v == "1") {
        std::fs::create_dir_all(path.parent().expect("parent")).expect("mkdir");
        std::fs::write(&path, &doc).expect("write golden");
        eprintln!("blessed {} ({} bytes)", path.display(), doc.len());
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); regenerate with \
             DSA_BLESS=1 cargo test -p dsa-core --test trace_golden",
            path.display()
        )
    });
    if doc != want {
        let diff_at = doc
            .lines()
            .zip(want.lines())
            .position(|(a, b)| a != b)
            .map(|i| i + 1)
            .unwrap_or_else(|| doc.lines().count().min(want.lines().count()) + 1);
        panic!(
            "trace diverged from golden snapshot at line {diff_at}\n\
             got  {} lines, want {} lines\n\
             got:  {}\n\
             want: {}\n\
             If the change is intentional, re-bless with \
             DSA_BLESS=1 cargo test -p dsa-core --test trace_golden",
            doc.lines().count(),
            want.lines().count(),
            doc.lines().nth(diff_at - 1).unwrap_or("<eof>"),
            want.lines().nth(diff_at - 1).unwrap_or("<eof>"),
        );
    }
}
