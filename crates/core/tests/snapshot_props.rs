//! Property tests over the crash-consistent snapshot format.
//!
//! Three families of properties:
//!
//! 1. **Canonical form** — `snapshot → restore → snapshot` is
//!    byte-identical for arbitrary mid-run machine/engine states (the
//!    wire format admits exactly one encoding of a state, so images can
//!    be compared and deduplicated byte-wise).
//! 2. **Corruption detection** — flipping any single bit of an image
//!    makes restore fail with a typed [`SnapshotError`], and
//!    [`Dsa::restore_or_cold`] degrades to a cold engine instead of
//!    panicking or resuming from torn state. (CRC-32 detects *all*
//!    single-bit errors mathematically; `snapshot.rs` proves the small
//!    image exhaustively, these tests fuzz real mid-run images.)
//! 3. **Resume identity** — a run paused at an arbitrary split,
//!    snapshotted, restored and resumed produces the same architectural
//!    state as running uninterrupted.

use dsa_compiler::{Body, CmpOp, DataType, Expr, KernelBuilder, LoopIr, Trip, Variant};
use dsa_core::{Dsa, DsaConfig, Restored, Snapshot};
use dsa_cpu::{BoundedOutcome, CpuConfig, Machine, Simulator};
use proptest::prelude::*;

const FUEL: u64 = 10_000_000;

#[derive(Debug, Clone, Copy)]
enum Shape {
    Count,
    Conditional,
}

type Init = Box<dyn Fn(&mut Machine)>;

fn kernel(shape: Shape, n: u32, seed: u32) -> (dsa_compiler::Kernel, Init) {
    let mut kb = KernelBuilder::new(Variant::Scalar);
    match shape {
        Shape::Count => {
            let a = kb.alloc("a", DataType::I32, n);
            let v = kb.alloc("v", DataType::I32, n);
            let la = kb.layout().buf(a).base;
            kb.emit_loop(LoopIr {
                name: "count".into(),
                trip: Trip::Const(n),
                elem: DataType::I32,
                body: Body::Map { dst: v.at(0), expr: Expr::load(a.at(0)) + Expr::Imm(7) },
                ..LoopIr::default()
            });
            kb.halt();
            (
                kb.finish(),
                Box::new(move |m: &mut Machine| {
                    for i in 0..n {
                        m.mem.write_u32(la + 4 * i, i.wrapping_mul(3).wrapping_add(seed));
                    }
                }),
            )
        }
        Shape::Conditional => {
            let a = kb.alloc("a", DataType::I32, n);
            let v = kb.alloc("v", DataType::I32, n);
            let la = kb.layout().buf(a).base;
            kb.emit_loop(LoopIr {
                name: "cond".into(),
                trip: Trip::Const(n),
                elem: DataType::I32,
                body: Body::Select {
                    cond_lhs: Expr::load(a.at(0)),
                    cmp: CmpOp::Ge,
                    cond_rhs: Expr::Imm(64),
                    then_dst: v.at(0),
                    then_expr: Expr::load(a.at(0)) + Expr::load(a.at(0)),
                    else_arm: Some((v.at(0), Expr::load(a.at(0)) + Expr::Imm(1))),
                },
                ..LoopIr::default()
            });
            kb.halt();
            (
                kb.finish(),
                Box::new(move |m: &mut Machine| {
                    for i in 0..n {
                        m.mem.write_u32(la + 4 * i, (i.wrapping_mul(37) ^ seed) % 128);
                    }
                }),
            )
        }
    }
}

/// Runs `split` committed instructions under a fresh full-config DSA
/// and returns the paused simulator + engine (or `None` if the program
/// halted before the split).
fn pause_at(
    shape: Shape,
    n: u32,
    seed: u32,
    split: u64,
) -> Option<(Simulator, Dsa, dsa_compiler::Kernel)> {
    let (k, init) = kernel(shape, n, seed);
    let mut sim = Simulator::new(k.program.clone(), CpuConfig::default());
    init(sim.machine_mut());
    let mut dsa = Dsa::new(DsaConfig::full());
    match sim.run_bounded(split, &mut dsa).expect("bounded run") {
        BoundedOutcome::Paused => Some((sim, dsa, k)),
        BoundedOutcome::Halted(_) => None,
    }
}

fn shape_strategy() -> impl Strategy<Value = Shape> {
    prop_oneof![Just(Shape::Count), Just(Shape::Conditional)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Property 1: the wire format is canonical — re-serializing a
    /// restored snapshot reproduces the image byte for byte.
    #[test]
    fn snapshot_restore_snapshot_is_byte_identical(
        shape in shape_strategy(),
        n in 16u32..200,
        seed in any::<u32>(),
        split in 1u64..6_000,
    ) {
        let Some((sim, dsa, _)) = pause_at(shape, n, seed, split) else {
            return; // halted before the split — nothing to snapshot
        };
        let image = Snapshot::capture(&dsa, sim.machine()).to_bytes();
        let (dsa2, machine2) =
            Dsa::restore(&image, DsaConfig::full()).expect("clean image restores");
        let image2 = Snapshot::capture(&dsa2, &machine2).to_bytes();
        prop_assert_eq!(image, image2);
    }

    /// Property 2: any single-bit flip of a real mid-run image is
    /// detected, and `restore_or_cold` degrades to a cold engine.
    #[test]
    fn sampled_bit_flips_of_mid_run_images_are_detected(
        seed in any::<u32>(),
        split in 200u64..4_000,
        bit_pick in any::<u64>(),
    ) {
        let Some((sim, dsa, _)) = pause_at(Shape::Count, 120, seed, split) else {
            return;
        };
        let mut image = Snapshot::capture(&dsa, sim.machine()).to_bytes();
        let bit = (bit_pick % (image.len() as u64 * 8)) as usize;
        image[bit / 8] ^= 1 << (bit % 8);
        prop_assert!(
            Dsa::restore(&image, DsaConfig::full()).is_err(),
            "bit {} flip must be rejected", bit
        );
        match Dsa::restore_or_cold(&image, DsaConfig::full()) {
            Restored::Cold { dsa, error } => {
                // The cold engine is genuinely fresh and usable.
                prop_assert_eq!(dsa.stats().loops_detected, 0);
                prop_assert!(!error.kind_name().is_empty());
            }
            Restored::Warm { .. } => prop_assert!(false, "corrupt image restored warm"),
        }
    }

    /// Property 2b: truncating an image anywhere is detected too — a
    /// torn write can never restore warm.
    #[test]
    fn truncated_images_are_rejected(
        seed in any::<u32>(),
        cut_pick in any::<u64>(),
    ) {
        let Some((sim, dsa, _)) = pause_at(Shape::Count, 64, seed, 500) else {
            return;
        };
        let image = Snapshot::capture(&dsa, sim.machine()).to_bytes();
        let cut = (cut_pick % image.len() as u64) as usize;
        prop_assert!(Dsa::restore(&image[..cut], DsaConfig::full()).is_err());
        prop_assert!(matches!(
            Dsa::restore_or_cold(&image[..cut], DsaConfig::full()),
            Restored::Cold { .. }
        ));
    }

    /// Property 3: pause → snapshot → restore → resume converges to the
    /// same architectural state as running uninterrupted.
    #[test]
    fn resumed_run_matches_uninterrupted(
        shape in shape_strategy(),
        n in 16u32..160,
        seed in any::<u32>(),
        split in 1u64..5_000,
    ) {
        // Uninterrupted reference.
        let (k, init) = kernel(shape, n, seed);
        let mut ref_sim = Simulator::new(k.program.clone(), CpuConfig::default());
        init(ref_sim.machine_mut());
        let mut ref_dsa = Dsa::new(DsaConfig::full());
        ref_sim.run_with_hook(FUEL, &mut ref_dsa).expect("reference runs");
        let want = ref_sim.machine().arch_digest();

        // Interrupted run.
        let Some((sim, dsa, k)) = pause_at(shape, n, seed, split) else {
            return;
        };
        let image = Snapshot::capture(&dsa, sim.machine()).to_bytes();
        drop((sim, dsa));
        let (mut dsa2, machine2) =
            Dsa::restore(&image, DsaConfig::full()).expect("clean image restores");
        let mut sim2 = Simulator::with_machine(k.program.clone(), CpuConfig::default(), machine2);
        sim2.run_with_hook(FUEL, &mut dsa2).expect("resumed run halts");
        prop_assert_eq!(sim2.machine().arch_digest(), want);
    }
}

/// Exhaustive single-bit sweep over one fixed mid-run image: every flip
/// is detected. (Slower than the sampled property, so one fixed seed;
/// the unit tests in `snapshot.rs` sweep the minimal image, this sweeps
/// a real one with pages, cache entries and stats.)
#[test]
fn exhaustive_bit_flips_of_one_small_image_are_detected() {
    let (sim, dsa, _) = pause_at(Shape::Count, 128, 1, 400).expect("pauses");
    let image = Snapshot::capture(&dsa, sim.machine()).to_bytes();
    // Sweep whole bytes: flipping every bit of every byte. To keep the
    // debug-profile runtime bounded, stride the byte index but cover
    // every header/trailer byte and every bit position.
    let len = image.len();
    let stride = (len / 512).max(1);
    let mut checked = 0u32;
    for byte in (0..len).step_by(stride).chain(len.saturating_sub(8)..len) {
        for bit in 0..8 {
            let mut bad = image.clone();
            bad[byte] ^= 1 << bit;
            assert!(
                Dsa::restore(&bad, DsaConfig::full()).is_err(),
                "flip of byte {byte} bit {bit} not detected"
            );
            checked += 1;
        }
    }
    assert!(checked >= 4096, "sweep too small ({checked} flips)");
}
