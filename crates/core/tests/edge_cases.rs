//! Engine edge cases: structure capacity limits, analysis give-ups and
//! cache pressure — always with correctness preserved.

use dsa_compiler::{Body, CmpOp, DataType, Expr, Kernel, KernelBuilder, LoopIr, Trip, Variant};
use dsa_core::{Dsa, DsaConfig, LoopClass};
use dsa_cpu::{CpuConfig, Machine, Simulator};

fn run(kernel: &Kernel, cfg: DsaConfig, init: &dyn Fn(&mut Machine)) -> (u64, Dsa, Machine) {
    let mut dsa = Dsa::new(cfg);
    let mut sim = Simulator::new(kernel.program.clone(), CpuConfig::default());
    init(sim.machine_mut());
    sim.warm_region(dsa_compiler::DATA_BASE_ADDR, 128 << 10);
    let out = sim.run_with_hook(50_000_000, &mut dsa).expect("runs");
    assert!(out.halted);
    (out.cycles, dsa, sim.machine().clone())
}

fn count_kernel(n: u32) -> (Kernel, u32) {
    let mut kb = KernelBuilder::new(Variant::Scalar);
    let a = kb.alloc("a", DataType::I32, n);
    let b = kb.alloc("b", DataType::I32, n);
    let v = kb.alloc("v", DataType::I32, n);
    let la = kb.layout().buf(a).base;
    kb.emit_loop(LoopIr {
        name: "count".into(),
        trip: Trip::Const(n),
        elem: DataType::I32,
        body: Body::Map { dst: v.at(0), expr: Expr::load(a.at(0)) + Expr::load(b.at(0)) },
        ..LoopIr::default()
    });
    kb.halt();
    (kb.finish(), la)
}

#[test]
fn verification_cache_overflow_rejects_loop() {
    let (kernel, la) = count_kernel(128);
    let init = move |m: &mut Machine| {
        for i in 0..128u32 {
            m.mem.write_u32(la + 4 * i, i);
        }
    };
    // 8 bytes hold two addresses; the loop performs three accesses per
    // iteration -> it cannot be verified.
    let tiny = DsaConfig { vcache_bytes: 8, ..DsaConfig::full() };
    let (_, dsa, _) = run(&kernel, tiny, &init);
    assert_eq!(dsa.stats().loops_vectorized, 0);
    assert_eq!(dsa.census().count(LoopClass::NonVectorizable), 1);
    // With the paper's 1 KB it verifies fine.
    let (_, dsa, _) = run(&kernel, DsaConfig::full(), &init);
    assert_eq!(dsa.stats().loops_vectorized, 1);
}

#[test]
fn conditional_analysis_gives_up_when_an_arm_never_verifies() {
    let n = 200u32;
    let mut kb = KernelBuilder::new(Variant::Scalar);
    let a = kb.alloc("a", DataType::I32, n);
    let v = kb.alloc("v", DataType::I32, n);
    let la = kb.layout().buf(a).base;
    kb.emit_loop(LoopIr {
        name: "skewed".into(),
        trip: Trip::Const(n),
        elem: DataType::I32,
        body: Body::Select {
            cond_lhs: Expr::load(a.at(0)),
            cmp: CmpOp::Gt,
            cond_rhs: Expr::Imm(1000),
            then_dst: v.at(0),
            then_expr: Expr::load(a.at(0)) + Expr::Imm(1),
            else_arm: Some((v.at(0), Expr::Imm(0))),
        },
        ..LoopIr::default()
    });
    kb.halt();
    let kernel = kb.finish();
    // The `then` arm fires exactly once, after the analysis budget.
    let init = move |m: &mut Machine| {
        for i in 0..n {
            m.mem.write_u32(la + 4 * i, if i == 150 { 2000 } else { 3 });
        }
    };
    let cfg = DsaConfig { conditional_analysis_limit: 64, ..DsaConfig::full() };
    let (_, dsa, machine) = run(&kernel, cfg, &init);
    assert_eq!(dsa.stats().loops_vectorized, 0, "one arm never verified in budget");
    assert_eq!(dsa.census().count(LoopClass::Conditional), 1);
    // Correctness unaffected.
    assert_eq!(machine.mem.read_u32(kernel.layout.buf(v).base + 4 * 150), 2001);
}

#[test]
fn array_map_capacity_limits_conditional_arms() {
    let n = 200u32;
    let build = || {
        let mut kb = KernelBuilder::new(Variant::Scalar);
        let a = kb.alloc("a", DataType::I32, n);
        let v = kb.alloc("v", DataType::I32, n);
        let la = kb.layout().buf(a).base;
        // then-arm with a long combine chain (7 value operations).
        let mut expr = Expr::load(a.at(0));
        for k in 1..=7 {
            expr = expr + Expr::Imm(k);
        }
        kb.emit_loop(LoopIr {
            name: "fat_arm".into(),
            trip: Trip::Const(n),
            elem: DataType::I32,
            body: Body::Select {
                cond_lhs: Expr::load(a.at(0)),
                cmp: CmpOp::Ge,
                cond_rhs: Expr::Imm(50),
                then_dst: v.at(0),
                then_expr: expr,
                else_arm: Some((v.at(0), Expr::Imm(0))),
            },
            ..LoopIr::default()
        });
        kb.halt();
        (kb.finish(), la)
    };
    let (kernel, la) = build();
    let init = move |m: &mut Machine| {
        for i in 0..n {
            m.mem.write_u32(la + 4 * i, i);
        }
    };
    // 2 array maps, no spare registers: the 7-op arm does not fit.
    let small = DsaConfig { array_maps: 2, spare_vector_regs: 0, ..DsaConfig::full() };
    let (_, dsa, _) = run(&kernel, small, &init);
    assert_eq!(dsa.stats().loops_vectorized, 0);
    // The paper's 4 maps + spare NEON registers fit it.
    let (_, dsa, _) = run(&kernel, DsaConfig::full(), &init);
    assert_eq!(dsa.stats().loops_vectorized, 1);
}

#[test]
fn tiny_dsa_cache_forces_reanalysis() {
    // Two loops in sequence, repeated: with a cache that holds barely
    // one entry, each re-entry re-analyses.
    let n = 64u32;
    let mut kb = KernelBuilder::new(Variant::Scalar);
    let a = kb.alloc("a", DataType::I32, n);
    let v = kb.alloc("v", DataType::I32, n);
    let w = kb.alloc("w", DataType::I32, n);
    let la = kb.layout().buf(a).base;
    let rep = dsa_isa::Reg::R11;
    kb.asm_mut().mov_imm(rep, 4);
    let top = kb.asm_mut().here();
    for dst in [v, w] {
        kb.emit_loop(LoopIr {
            name: "x".into(),
            trip: Trip::Const(n),
            elem: DataType::I32,
            body: Body::Map { dst: dst.at(0), expr: Expr::load(a.at(0)) + Expr::Imm(1) },
            ..LoopIr::default()
        });
    }
    {
        let asm = kb.asm_mut();
        asm.sub_imm(rep, rep, 1);
        asm.cmp_imm(rep, 0);
        asm.b_to(dsa_isa::Cond::Ne, top);
        asm.halt();
    }
    let kernel = kb.finish();
    let init = move |m: &mut Machine| {
        for i in 0..n {
            m.mem.write_u32(la + 4 * i, i);
        }
    };
    let (cycles_tiny, dsa_tiny, _) =
        run(&kernel, DsaConfig { dsa_cache_bytes: 48, ..DsaConfig::full() }, &init);
    let (cycles_big, dsa_big, _) = run(&kernel, DsaConfig::full(), &init);
    assert!(dsa_tiny.stats().dsa_cache_hits < dsa_big.stats().dsa_cache_hits);
    assert!(dsa_tiny.stats().loops_vectorized >= 2, "still vectorizes after re-analysis");
    // Cycles land in the same ballpark (the big cache pays a one-time
    // nest-fusion probe on this two-inner-loop body; the capacity
    // *performance* effect is shown by the 48-loop cache-size ablation).
    let ratio = cycles_big.max(cycles_tiny) as f64 / cycles_big.min(cycles_tiny) as f64;
    assert!(ratio < 1.25, "{cycles_big} vs {cycles_tiny}");
}

#[test]
fn fusable_nest_executes_as_one_loop() {
    use dsa_compiler::Variant;
    use dsa_workloads::micro::{build, Micro};
    use dsa_workloads::Scale;
    let w = build(Micro::NestFused, Variant::Scalar, Scale::Paper);
    let run_cfg = |cfg: DsaConfig| {
        let mut dsa = Dsa::new(cfg);
        let mut sim = Simulator::new(w.kernel.program.clone(), CpuConfig::default());
        (w.init)(sim.machine_mut());
        sim.warm_region(dsa_compiler::DATA_BASE_ADDR, 128 << 10);
        let out = sim.run_with_hook(50_000_000, &mut dsa).expect("runs");
        assert!(out.halted && w.check(sim.machine()), "fused nest must be correct");
        (out.cycles, dsa)
    };
    let (fused_cycles, fused) = run_cfg(DsaConfig::full());
    let mut no_nests = DsaConfig::full();
    no_nests.features.loop_nests = false;
    let (unfused_cycles, unfused) = run_cfg(no_nests);

    // Fused: inner once + the fused outer; unfused: one vectorization
    // per inner entry.
    assert!(fused.census().count(LoopClass::Nest) == 1);
    assert!(
        fused.stats().loops_vectorized < unfused.stats().loops_vectorized,
        "{} vs {}",
        fused.stats().loops_vectorized,
        unfused.stats().loops_vectorized
    );
    assert!(
        fused_cycles < unfused_cycles,
        "fusion avoids per-entry flushes: {fused_cycles} vs {unfused_cycles}"
    );
}

#[test]
fn misaligned_trip_starts_still_vectorize_correctly() {
    // Trips that leave the vector start misaligned exercise the peel
    // logic across all residues.
    for n in [9u32, 10, 11, 12, 13, 29, 61] {
        let (kernel, la) = count_kernel(n);
        let init = move |m: &mut Machine| {
            for i in 0..n {
                m.mem.write_u32(la + 4 * i, 7 * i);
            }
        };
        let (_, dsa, machine) = run(&kernel, DsaConfig::full(), &init);
        if n >= 12 {
            assert!(dsa.stats().loops_vectorized > 0, "n={n}");
        }
        let v_base = kernel.layout.bufs()[2].base;
        for i in 0..n {
            assert_eq!(machine.mem.read_u32(v_base + 4 * i), 7 * i, "n={n} elem {i}");
        }
    }
}

#[test]
fn dynamic_range_loop_reanalyses_across_executions() {
    // The same DRL executed with three different runtime trips: every
    // execution is correct and (when long enough) vectorized, with the
    // remaining count recomputed from the live registers each time.
    let n = 96u32;
    let mut kb = KernelBuilder::new(Variant::Scalar);
    let a = kb.alloc("a", DataType::I32, n);
    let v = kb.alloc("v", DataType::I32, n);
    let trips = kb.alloc("trips", DataType::I32, 3);
    let locals = kb.alloc("locals", DataType::I32, 1);
    let (la, lv, lt, ll) = (
        kb.layout().buf(a).base,
        kb.layout().buf(v).base,
        kb.layout().buf(trips).base,
        kb.layout().buf(locals).base,
    );
    let outer;
    {
        let asm = kb.asm_mut();
        asm.mov_imm(dsa_isa::Reg::R6, 0);
        asm.mov_imm(dsa_isa::Reg::R12, ll as i32);
        asm.str(dsa_isa::Reg::R6, dsa_isa::Reg::R12, 0);
        outer = asm.here();
        // r11 = trips[k]
        asm.mov_imm(dsa_isa::Reg::R12, ll as i32);
        asm.ldr(dsa_isa::Reg::R6, dsa_isa::Reg::R12, 0);
        asm.mov_imm(dsa_isa::Reg::R12, lt as i32);
        asm.ldr_idx(dsa_isa::Reg::R11, dsa_isa::Reg::R12, dsa_isa::Reg::R6, 2, dsa_isa::MemSize::W);
    }
    kb.emit_loop(LoopIr {
        name: "drl_multi".into(),
        trip: Trip::Reg(dsa_isa::Reg::R11),
        elem: DataType::I32,
        body: Body::Map { dst: v.at(0), expr: Expr::load(a.at(0)) + Expr::load(v.at(0)) },
        ..LoopIr::default()
    });
    {
        let asm = kb.asm_mut();
        asm.mov_imm(dsa_isa::Reg::R12, ll as i32);
        asm.ldr(dsa_isa::Reg::R6, dsa_isa::Reg::R12, 0);
        asm.add_imm(dsa_isa::Reg::R6, dsa_isa::Reg::R6, 1);
        asm.str(dsa_isa::Reg::R6, dsa_isa::Reg::R12, 0);
        asm.cmp_imm(dsa_isa::Reg::R6, 3);
        asm.b_to(dsa_isa::Cond::Ne, outer);
        asm.halt();
    }
    let kernel = kb.finish();
    let trips_v = [80u32, 24, 60];
    let init = move |m: &mut Machine| {
        for i in 0..n {
            m.mem.write_u32(la + 4 * i, i + 1);
        }
        for (k, &t) in trips_v.iter().enumerate() {
            m.mem.write_u32(lt + 4 * k as u32, t);
        }
    };
    let (_, dsa, machine) = run(&kernel, DsaConfig::extended(), &init);
    // v accumulates a[i] once per execution that covers index i.
    for i in 0..n {
        let times = trips_v.iter().filter(|&&t| i < t).count() as u32;
        assert_eq!(machine.mem.read_u32(lv + 4 * i), times * (i + 1), "element {i}");
    }
    assert!(dsa.stats().loops_vectorized >= 3, "each execution vectorized");
}

#[test]
fn sentinel_speculation_always_profitable_on_long_strings() {
    // Regression: block speculation must never degenerate to lane ops
    // (a peel-shrunk first block once did, making the DSA *slower*).
    use dsa_compiler::Variant;
    use dsa_workloads::micro::{build, Micro};
    use dsa_workloads::Scale;
    let w = build(Micro::Sentinel, Variant::Scalar, Scale::Paper);
    let run_once = |with_dsa: bool| -> (u64, u64) {
        let mut sim = Simulator::new(w.kernel.program.clone(), CpuConfig::default());
        (w.init)(sim.machine_mut());
        for buf in w.kernel.layout.bufs() {
            sim.warm_region(buf.base, buf.size_bytes());
        }
        let out = if with_dsa {
            let mut dsa = Dsa::new(DsaConfig::full());
            let o = sim.run_with_hook(100_000_000, &mut dsa).expect("runs");
            assert!(w.check(sim.machine()));
            // One vld1 + ops + vst1 per 16-lane block, not per element.
            let s = dsa.stats();
            assert!(
                s.injected_ops < s.covered_iterations,
                "vector blocks, not lane ops: {} injected for {} iterations",
                s.injected_ops,
                s.covered_iterations
            );
            (o.cycles, s.injected_ops)
        } else {
            let o = sim.run(100_000_000).expect("runs");
            (o.cycles, 0)
        };
        out
    };
    let (scalar, _) = run_once(false);
    let (dsa, _) = run_once(true);
    assert!(
        dsa * 2 < scalar,
        "sentinel speculation must be clearly profitable: {dsa} vs {scalar}"
    );
}
