//! CIDP soundness: the prediction must never report "no dependency"
//! when a ground-truth replay of the affine streams finds a
//! read-after-write overlap within the predicted trip.

use dsa_core::{predict, CidpOutcome, Stream};
use proptest::prelude::*;

fn any_stream() -> impl Strategy<Value = Stream> {
    (0i64..512, prop_oneof![Just(1i64), Just(2), Just(4)], any::<bool>(), 1u8..=4).prop_map(
        |(slot, gap_scale, is_write, bytes)| Stream {
            // Small address space so overlaps actually happen.
            addr2: slot * 4,
            gap: gap_scale * bytes as i64,
            is_write,
            bytes,
        },
    )
}

/// Ground truth: simulate every iteration's accesses; a cross-iteration
/// dependency exists if a *future* read (iteration > 2) touches bytes
/// the iteration-2 store wrote (the paper's definition, equations
/// 4.1–4.3).
fn ground_truth_cid(streams: &[Stream], trip: u32) -> bool {
    for w in streams.iter().filter(|s| s.is_write) {
        let (w_lo, w_hi) = (w.addr2, w.addr2 + w.bytes as i64 - 1);
        for r in streams.iter().filter(|s| !s.is_write) {
            for i in 3..=trip as i64 {
                let lo = r.addr_at(i);
                let hi = lo + r.bytes as i64 - 1;
                if lo <= w_hi && w_lo <= hi {
                    return true;
                }
            }
        }
    }
    false
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Soundness: `NoDependency` implies the ground truth also finds no
    /// read-after-write overlap (vectorizing would be safe).
    #[test]
    fn no_dependency_is_sound(
        streams in prop::collection::vec(any_stream(), 1..6),
        trip in 4u32..200,
    ) {
        if predict(&streams, trip) == CidpOutcome::NoDependency {
            prop_assert!(
                !ground_truth_cid(&streams, trip),
                "CIDP said safe but a true dependency exists: {streams:?} trip {trip}"
            );
        }
    }

    /// The reported distance is itself safe: no read within `distance`
    /// iterations after iteration 2 touches the iteration-2 store (so a
    /// chunk of `distance` iterations can execute in parallel).
    #[test]
    fn partial_distance_is_safe(
        streams in prop::collection::vec(any_stream(), 2..6),
        trip in 8u32..200,
    ) {
        if let CidpOutcome::Dependency { distance } = predict(&streams, trip) {
            prop_assert!(distance >= 1);
            let capped = (2 + distance).min(trip);
            prop_assert!(
                !ground_truth_cid(&streams, capped.saturating_sub(1)),
                "distance {distance} crosses a true dependency: {streams:?}"
            );
        }
    }
}
