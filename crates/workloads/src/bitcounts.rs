//! BitCounts: per-element bit counting over a runtime-sized buffer.
//!
//! Like MiBench's `bitcnts`, the application mixes several counting
//! algorithms: eight mask rounds of a *conditional dynamic-range* loop
//! (`if (a[i] & mask) != 0 then cnt[i]++`, trip read from memory at
//! startup), a nibble-table lookup pass (`ntbl_bitcnt` — indirect
//! addressing, vectorizable by nothing) and a register reduction. Only
//! the extended/full DSA touches the conditional rounds.

use dsa_compiler::{regs, BinOp, Body, CmpOp, DataType, Expr, KernelBuilder, LoopIr, Trip, Variant};
use dsa_isa::{Cond, Reg};

use crate::data;
use crate::{BuiltWorkload, Scale};

pub(crate) fn build(variant: Variant, scale: Scale) -> BuiltWorkload {
    let n: u32 = match scale {
        Scale::Small => 256,
        Scale::Medium => 1024,
        Scale::Paper => 4096,
        Scale::Large => 8192,
    };
    // The runtime trip: most of the buffer, not known statically.
    let n_rt: u32 = n - n / 16;

    let mut kb = KernelBuilder::new(variant);
    let a = kb.alloc("a", DataType::I32, n);
    let cnt = kb.alloc("cnt", DataType::I32, n);
    let out = kb.alloc("out", DataType::I32, 1);
    let tcnt = kb.alloc("tcnt", DataType::I32, n);
    let ntbl = kb.alloc("ntbl", DataType::I32, 16);
    let params = kb.alloc("params", DataType::I32, 1);
    let locals = kb.alloc("locals", DataType::I32, 1);
    let (la, lc, lnt, lo, lp, ll) = (
        kb.layout().buf(a).base,
        kb.layout().buf(cnt).base,
        kb.layout().buf(ntbl).base,
        kb.layout().buf(out).base,
        kb.layout().buf(params).base,
        kb.layout().buf(locals).base,
    );
    let lt = kb.layout().buf(tcnt).base;

    // cnt[i] = 0 — the one statically vectorizable loop.
    kb.emit_loop(LoopIr {
        name: "bitcnt_init".into(),
        trip: Trip::Const(n),
        elem: DataType::I32,
        body: Body::Map { dst: cnt.at(0), expr: Expr::Imm(0) },
        ..LoopIr::default()
    });

    let round_top;
    {
        let asm = kb.asm_mut();
        // r11 = runtime element count (dynamic range).
        asm.mov_imm(Reg::R12, lp as i32);
        asm.ldr(Reg::R11, Reg::R12, 0);
        // r10 = mask; round counter in locals[0].
        asm.mov_imm(regs::PARAM[0], 1);
        asm.mov_imm(Reg::R6, 0);
        asm.mov_imm(Reg::R12, ll as i32);
        asm.str(Reg::R6, Reg::R12, 0);
        round_top = asm.here();
    }

    // if (a[i] & mask) != 0 { cnt[i] = cnt[i] + 1 } over i in 0..n_rt.
    kb.emit_loop(LoopIr {
        name: "bitcnt_test".into(),
        trip: Trip::Reg(Reg::R11),
        elem: DataType::I32,
        body: Body::Select {
            cond_lhs: Expr::load(a.at(0)) & Expr::Var(0),
            cmp: CmpOp::Ne,
            cond_rhs: Expr::Imm(0),
            then_dst: cnt.at(0),
            then_expr: Expr::load(cnt.at(0)) + Expr::Imm(1),
            else_arm: None,
        },
        ..LoopIr::default()
    });

    {
        let asm = kb.asm_mut();
        // mask <<= 1; 8 rounds.
        asm.lsl_imm(regs::PARAM[0], regs::PARAM[0], 1);
        asm.mov_imm(Reg::R12, ll as i32);
        asm.ldr(Reg::R6, Reg::R12, 0);
        asm.add_imm(Reg::R6, Reg::R6, 1);
        asm.str(Reg::R6, Reg::R12, 0);
        asm.cmp_imm(Reg::R6, 4);
        asm.b_to(Cond::Ne, round_top);
    }

    // ntbl_bitcnt / BW_btbl: two per-element nibble-table lookup passes
    // (gather — stays scalar on every system, like the MiBench variants).
    for pass in ["bitcnt_ntbl", "bitcnt_btbl"] {
        kb.emit_loop(LoopIr {
            name: pass.into(),
            trip: Trip::Reg(Reg::R11),
            elem: DataType::I32,
            body: Body::Map {
                dst: tcnt.at(0),
                expr: Expr::Gather(ntbl, Box::new(Expr::load(a.at(0)) & Expr::Imm(15)))
                    + Expr::Gather(ntbl, Box::new(Expr::load(a.at(0)).shr(4) & Expr::Imm(15))),
            },
            ..LoopIr::default()
        });
    }

    // out[0] = sum(cnt[0..n_rt]) — a register reduction.
    kb.emit_loop(LoopIr {
        name: "bitcnt_sum".into(),
        trip: Trip::Reg(Reg::R11),
        elem: DataType::I32,
        body: Body::Reduce {
            op: BinOp::Add,
            expr: Expr::load(cnt.at(0)),
            out: out.at(0),
            init: 0,
        },
        ..LoopIr::default()
    });
    kb.halt();
    let kernel = kb.finish();

    let av = data::ints(0x81, n as usize, 0, 256);
    // Conditional rounds count the low nibble; the table passes count all
    // eight bits.
    let cnt_ref: Vec<i32> = (0..n as usize)
        .map(|i| if i < n_rt as usize { (av[i] & 0xF).count_ones() as i32 } else { 0 })
        .collect();
    let tcnt_ref: Vec<i32> = (0..n as usize)
        .map(|i| if i < n_rt as usize { (av[i] & 0xFF).count_ones() as i32 } else { 0 })
        .collect();
    let ntbl_ref: Vec<i32> = (0..16).map(|v: i32| v.count_ones() as i32).collect();
    let total: i32 = cnt_ref[..n_rt as usize].iter().sum();
    // Output region spans cnt, out and tcnt (with alignment padding).
    let mut ref_bytes = data::i32_bytes(&cnt_ref);
    ref_bytes.resize((lo - lc) as usize, 0);
    ref_bytes.extend_from_slice(&total.to_le_bytes());
    ref_bytes.resize((lt - lc) as usize, 0);
    ref_bytes.extend_from_slice(&data::i32_bytes(&tcnt_ref));
    let expected = crate::checksum_bytes(&ref_bytes);

    BuiltWorkload {
        kernel,
        init: Box::new(move |m| {
            m.mem.write_bytes(la, &data::i32_bytes(&av));
            m.mem.write_bytes(lnt, &data::i32_bytes(&ntbl_ref));
            m.mem.write_u32(lp, n_rt);
        }),
        out_region: (lc, lt - lc + n * 4),
        expected,
    }
}
