//! RGB → grayscale: one large fixed-point count loop.
//!
//! `gray[i] = (77·r[i] + 150·g[i] + 29·b[i]) >> 8` over planar channel
//! arrays — the highest-DLP workload of the suite.

use dsa_compiler::{Body, DataType, Expr, KernelBuilder, LoopIr, Trip, Variant};

use crate::data;
use crate::{BuiltWorkload, Scale};

pub(crate) fn build(variant: Variant, scale: Scale) -> BuiltWorkload {
    let n: u32 = match scale {
        Scale::Small => 512,
        Scale::Medium => 2048,
        Scale::Paper => 16384,
        Scale::Large => 32768,
    };

    let mut kb = KernelBuilder::new(variant);
    let r = kb.alloc("r", DataType::I32, n);
    let g = kb.alloc("g", DataType::I32, n);
    let b = kb.alloc("b", DataType::I32, n);
    let gray = kb.alloc("gray", DataType::I32, n);
    let (lr, lg, lb, lgray) = (
        kb.layout().buf(r).base,
        kb.layout().buf(g).base,
        kb.layout().buf(b).base,
        kb.layout().buf(gray).base,
    );

    kb.emit_loop(LoopIr {
        name: "rgb_to_gray".into(),
        trip: Trip::Const(n),
        elem: DataType::I32,
        body: Body::Map {
            dst: gray.at(0),
            expr: (Expr::Imm(77) * Expr::load(r.at(0))
                + Expr::Imm(150) * Expr::load(g.at(0))
                + Expr::Imm(29) * Expr::load(b.at(0)))
            .shr(8),
        },
        ..LoopIr::default()
    });
    kb.halt();
    let kernel = kb.finish();

    let rv = data::ints(0x31, n as usize, 0, 256);
    let gv = data::ints(0x32, n as usize, 0, 256);
    let bv = data::ints(0x33, n as usize, 0, 256);
    let reference: Vec<i32> = (0..n as usize)
        .map(|i| ((77 * rv[i] + 150 * gv[i] + 29 * bv[i]) as u32 >> 8) as i32)
        .collect();
    let expected = crate::checksum_bytes(&data::i32_bytes(&reference));

    BuiltWorkload {
        kernel,
        init: Box::new(move |m| {
            m.mem.write_bytes(lr, &data::i32_bytes(&rv));
            m.mem.write_bytes(lg, &data::i32_bytes(&gv));
            m.mem.write_bytes(lb, &data::i32_bytes(&bv));
        }),
        out_region: (lgray, n * 4),
        expected,
    }
}
