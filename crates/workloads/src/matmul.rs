//! MM 64×64: single-precision matrix multiply in saxpy form.
//!
//! `C[i][j] += A[i][k] * B[k][j]` with the `j` loop innermost: two raw
//! outer loops drive one vectorizable count loop whose pointers (the `C`
//! and `B` rows) and scalar (`s = A[i][k]`) change per entry — the
//! loop-nest reuse case the DSA cache accelerates.

use dsa_compiler::{Body, DataType, Expr, KernelBuilder, LoopIr, Trip, Variant};
use dsa_isa::{Cond, MemSize, Reg};

use crate::data;
use crate::{BuiltWorkload, Scale};

pub(crate) fn build(variant: Variant, scale: Scale) -> BuiltWorkload {
    let n: u32 = match scale {
        Scale::Small => 8,
        Scale::Medium => 16,
        Scale::Paper => 64,
        // Power of two only: row indexing below shifts by log2(n).
        Scale::Large => 128,
    };
    debug_assert!(n.is_power_of_two());
    let log2n = n.trailing_zeros() as i16;

    let mut kb = KernelBuilder::new(variant);
    let a = kb.alloc("a", DataType::F32, n * n);
    let b = kb.alloc("b", DataType::F32, n * n);
    let c = kb.alloc("c", DataType::F32, n * n);
    let locals = kb.alloc("locals", DataType::I32, 2);
    let (la, lb, lc, ll) = (
        kb.layout().buf(a).base,
        kb.layout().buf(b).base,
        kb.layout().buf(c).base,
        kb.layout().buf(locals).base,
    );

    // locals[0] = i, locals[1] = k.
    let (outer_i, outer_k);
    {
        let asm = kb.asm_mut();
        asm.mov_imm(Reg::R6, 0);
        asm.mov_imm(Reg::R12, ll as i32);
        asm.str(Reg::R6, Reg::R12, 0); // i = 0
        outer_i = asm.here();
        asm.mov_imm(Reg::R6, 0);
        asm.mov_imm(Reg::R12, ll as i32);
        asm.str(Reg::R6, Reg::R12, 4); // k = 0
        outer_k = asm.here();
        // r6 = i, r7 = k.
        asm.mov_imm(Reg::R12, ll as i32);
        asm.ldr(Reg::R6, Reg::R12, 0);
        asm.ldr(Reg::R7, Reg::R12, 4);
        // r10 = s = A[i*n + k].
        asm.lsl_imm(Reg::R8, Reg::R6, log2n);
        asm.add(Reg::R8, Reg::R8, Reg::R7);
        asm.lsl_imm(Reg::R8, Reg::R8, 2);
        asm.mov_imm(Reg::R9, la as i32);
        asm.add(Reg::R8, Reg::R9, Reg::R8);
        asm.emit(dsa_isa::Instr::Ldr {
            rd: Reg::R10,
            rn: Reg::R8,
            mode: dsa_isa::AddrMode::Offset(0),
            size: MemSize::W,
        });
        // r11 = &C[i*n], r12 = &B[k*n].
        asm.lsl_imm(Reg::R11, Reg::R6, log2n + 2);
        asm.mov_imm(Reg::R9, lc as i32);
        asm.add(Reg::R11, Reg::R9, Reg::R11);
        asm.lsl_imm(Reg::R12, Reg::R7, log2n + 2);
        asm.mov_imm(Reg::R9, lb as i32);
        asm.add(Reg::R12, Reg::R9, Reg::R12);
    }

    // Inner saxpy loop: c[j] = c[j] + s * b[j].
    kb.emit_loop(LoopIr {
        name: "mm_saxpy".into(),
        trip: Trip::Const(n),
        elem: DataType::F32,
        body: Body::Map {
            dst: c.at(0),
            expr: Expr::load(c.at(0)) + Expr::Var(0) * Expr::load(b.at(0)),
        },
        ptr_overrides: vec![(c, Reg::R11), (b, Reg::R12)],
        ..LoopIr::default()
    });

    {
        let asm = kb.asm_mut();
        // k++.
        asm.mov_imm(Reg::R12, ll as i32);
        asm.ldr(Reg::R7, Reg::R12, 4);
        asm.add_imm(Reg::R7, Reg::R7, 1);
        asm.str(Reg::R7, Reg::R12, 4);
        asm.cmp_imm(Reg::R7, n as i16);
        asm.b_to(Cond::Lt, outer_k);
        // i++.
        asm.ldr(Reg::R6, Reg::R12, 0);
        asm.add_imm(Reg::R6, Reg::R6, 1);
        asm.str(Reg::R6, Reg::R12, 0);
        asm.cmp_imm(Reg::R6, n as i16);
        asm.b_to(Cond::Lt, outer_i);
        asm.halt();
    }
    let kernel = kb.finish();

    // Inputs and the reference result (identical operation order).
    let av = data::floats(0x11, (n * n) as usize, -1.0, 2.0);
    let bv = data::floats(0x22, (n * n) as usize, -1.0, 2.0);
    let mut cref = vec![0f32; (n * n) as usize];
    for i in 0..n as usize {
        for k in 0..n as usize {
            let s = av[i * n as usize + k];
            for j in 0..n as usize {
                cref[i * n as usize + j] += s * bv[k * n as usize + j];
            }
        }
    }
    let expected = crate::checksum_bytes(&data::f32_bytes(&cref));

    let (av2, bv2) = (av, bv);
    BuiltWorkload {
        kernel,
        init: Box::new(move |m| {
            m.mem.write_bytes(la, &data::f32_bytes(&av2));
            m.mem.write_bytes(lb, &data::f32_bytes(&bv2));
        }),
        out_region: (lc, n * n * 4),
        expected,
    }
}
