//! Deterministic input-data generation shared by the simulated kernels
//! and their Rust reference implementations.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Seeded RNG so every build of a workload sees identical data.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// `n` pseudo-random `i32` values in `lo..hi`.
pub fn ints(seed: u64, n: usize, lo: i32, hi: i32) -> Vec<i32> {
    let mut r = rng(seed);
    (0..n).map(|_| r.gen_range(lo..hi)).collect()
}

/// `n` pseudo-random `f32` values in `lo..hi`, quantised to 1/64 so
/// float operations stay exactly representable across orderings used by
/// the kernels.
pub fn floats(seed: u64, n: usize, lo: f32, hi: f32) -> Vec<f32> {
    let mut r = rng(seed);
    (0..n)
        .map(|_| {
            let v: f32 = r.gen_range(lo..hi);
            (v * 64.0).round() / 64.0
        })
        .collect()
}

/// Serialises `i32`s to little-endian bytes.
pub fn i32_bytes(values: &[i32]) -> Vec<u8> {
    values.iter().flat_map(|v| v.to_le_bytes()).collect()
}

/// Serialises `f32`s to little-endian bytes.
pub fn f32_bytes(values: &[f32]) -> Vec<u8> {
    values.iter().flat_map(|v| v.to_le_bytes()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(ints(1, 16, 0, 100), ints(1, 16, 0, 100));
        assert_ne!(ints(1, 16, 0, 100), ints(2, 16, 0, 100));
        assert_eq!(floats(7, 8, -1.0, 1.0), floats(7, 8, -1.0, 1.0));
    }

    #[test]
    fn ranges_respected() {
        for v in ints(3, 1000, 5, 10) {
            assert!((5..10).contains(&v));
        }
    }

    #[test]
    fn byte_serialisation() {
        assert_eq!(i32_bytes(&[1]), vec![1, 0, 0, 0]);
        assert_eq!(f32_bytes(&[0.0]), vec![0, 0, 0, 0]);
    }
}
