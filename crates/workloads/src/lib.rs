//! The benchmark suite: the seven applications of the paper's
//! evaluation, rebuilt with the same loop and DLP structure, plus
//! microkernels for every loop class.
//!
//! Each workload builds in any of the three compiler [`Variant`]s
//! (Scalar = "ARM Original", AutoVec, HandVec) — the DSA runs on top of
//! the Scalar build. Every workload ships a Rust *reference
//! implementation* whose result is checksummed; all four systems must
//! reproduce it bit-exactly, which the integration tests assert.
//!
//! | Workload | DLP | Loop classes |
//! |----------|-----|--------------|
//! | [`WorkloadId::MatMul`] | high | count loops in a nest (saxpy form) |
//! | [`WorkloadId::RgbGray`] | high | one large count loop |
//! | [`WorkloadId::Gaussian`] | high | two windowed count loops |
//! | [`WorkloadId::SusanEdges`] | medium | conditional + count + non-vectorizable |
//! | [`WorkloadId::QSort`] | low | irregular control, tiny count loops |
//! | [`WorkloadId::Dijkstra`] | low/dynamic | conditional (relax) + non-vectorizable |
//! | [`WorkloadId::BitCounts`] | dynamic | conditional dynamic-range loops |
//!
//! # Examples
//!
//! ```
//! use dsa_workloads::{build, Scale, WorkloadId};
//! use dsa_compiler::Variant;
//! use dsa_cpu::{CpuConfig, Simulator};
//!
//! let w = build(WorkloadId::RgbGray, Variant::Scalar, Scale::Small);
//! let mut sim = Simulator::new(w.kernel.program.clone(), CpuConfig::default());
//! (w.init)(sim.machine_mut());
//! let outcome = sim.run(50_000_000).expect("runs");
//! assert!(outcome.halted);
//! assert!(w.check(sim.machine()), "matches the reference result");
//! ```

mod bitcounts;
mod data;
mod dijkstra;
mod gaussian;
mod matmul;
pub mod micro;
mod qsort;
mod rgb_gray;
mod susan;

use dsa_compiler::{Kernel, Variant};
use dsa_cpu::Machine;

/// The seven applications of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadId {
    /// Matrix multiply 64×64 (f32, saxpy formulation).
    MatMul,
    /// RGB → grayscale conversion (fixed point).
    RgbGray,
    /// 3-tap Gaussian blur, two passes.
    Gaussian,
    /// SUSAN-style edge thresholding.
    SusanEdges,
    /// Iterative quicksort.
    QSort,
    /// Dijkstra single-source shortest paths (dense).
    Dijkstra,
    /// Bit counting over a runtime-sized buffer.
    BitCounts,
}

impl WorkloadId {
    /// All workloads in the paper's presentation order.
    pub fn all() -> [WorkloadId; 7] {
        [
            WorkloadId::MatMul,
            WorkloadId::RgbGray,
            WorkloadId::Gaussian,
            WorkloadId::SusanEdges,
            WorkloadId::QSort,
            WorkloadId::Dijkstra,
            WorkloadId::BitCounts,
        ]
    }

    /// Display name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            WorkloadId::MatMul => "MM 64x64",
            WorkloadId::RgbGray => "RGB-Gray",
            WorkloadId::Gaussian => "Gaussian Filter",
            WorkloadId::SusanEdges => "Susan E",
            WorkloadId::QSort => "Q Sort",
            WorkloadId::Dijkstra => "Dijkstra",
            WorkloadId::BitCounts => "BitCounts",
        }
    }
}

/// Problem size selector: `Paper` matches the evaluation, `Small` keeps
/// debug-build tests fast, and `Medium`/`Large` bracket the paper sizes
/// for sensitivity runs (`inspect --scale`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scale {
    /// Reduced sizes for unit/integration tests.
    Small,
    /// Between `Small` and `Paper`: quick interactive runs.
    Medium,
    /// The sizes used by the experiment harness.
    Paper,
    /// Beyond the paper sizes: stresses cache capacity and long traces.
    Large,
}

impl Scale {
    /// Parses a CLI spelling (`small`, `medium`, `paper`, `large`).
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "small" => Some(Scale::Small),
            "medium" => Some(Scale::Medium),
            "paper" => Some(Scale::Paper),
            "large" => Some(Scale::Large),
            _ => None,
        }
    }

    /// The CLI spelling.
    pub fn name(self) -> &'static str {
        match self {
            Scale::Small => "small",
            Scale::Medium => "medium",
            Scale::Paper => "paper",
            Scale::Large => "large",
        }
    }
}

type InitFn = Box<dyn Fn(&mut Machine) + Send + Sync>;

/// A workload lowered for one compiler variant, with its data
/// initialiser and golden result.
pub struct BuiltWorkload {
    /// The lowered kernel.
    pub kernel: Kernel,
    /// Writes the input data into machine memory.
    pub init: InitFn,
    /// Output region `(base, len_bytes)` checked against the reference.
    pub out_region: (u32, u32),
    /// Checksum of the reference implementation's output.
    pub expected: u64,
}

impl std::fmt::Debug for BuiltWorkload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BuiltWorkload")
            .field("variant", &self.kernel.variant)
            .field("out_region", &self.out_region)
            .field("expected", &self.expected)
            .finish_non_exhaustive()
    }
}

impl BuiltWorkload {
    /// Whether the machine's output region matches the reference result.
    pub fn check(&self, machine: &Machine) -> bool {
        self.actual(machine) == self.expected
    }

    /// Checksum of the machine's output region.
    pub fn actual(&self, machine: &Machine) -> u64 {
        checksum(machine, self.out_region.0, self.out_region.1)
    }
}

/// FNV-1a checksum of a memory region.
pub fn checksum(machine: &Machine, base: u32, len_bytes: u32) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for i in 0..len_bytes {
        h ^= machine.mem.read_u8(base + i) as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// FNV-1a checksum of a byte slice (for reference implementations).
pub fn checksum_bytes(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Builds a workload for the given variant and scale.
pub fn build(id: WorkloadId, variant: Variant, scale: Scale) -> BuiltWorkload {
    match id {
        WorkloadId::MatMul => matmul::build(variant, scale),
        WorkloadId::RgbGray => rgb_gray::build(variant, scale),
        WorkloadId::Gaussian => gaussian::build(variant, scale),
        WorkloadId::SusanEdges => susan::build(variant, scale),
        WorkloadId::QSort => qsort::build(variant, scale),
        WorkloadId::Dijkstra => dijkstra::build(variant, scale),
        WorkloadId::BitCounts => bitcounts::build(variant, scale),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checksum_consistency() {
        let mut m = Machine::new();
        m.mem.write_bytes(0x100, &[1, 2, 3, 4]);
        assert_eq!(checksum(&m, 0x100, 4), checksum_bytes(&[1, 2, 3, 4]));
        assert_ne!(checksum(&m, 0x100, 4), checksum_bytes(&[1, 2, 3, 5]));
    }

    #[test]
    fn names_and_order() {
        assert_eq!(WorkloadId::all().len(), 7);
        assert_eq!(WorkloadId::MatMul.name(), "MM 64x64");
    }

    #[test]
    fn scale_parse_round_trips() {
        for s in [Scale::Small, Scale::Medium, Scale::Paper, Scale::Large] {
            assert_eq!(Scale::parse(s.name()), Some(s));
        }
        assert_eq!(Scale::parse("huge"), None);
    }

    #[test]
    fn medium_scale_builds_and_checks() {
        use dsa_compiler::Variant;
        use dsa_cpu::{CpuConfig, Simulator};

        let w = build(WorkloadId::BitCounts, Variant::Scalar, Scale::Medium);
        let mut sim = Simulator::new(w.kernel.program.clone(), CpuConfig::default());
        (w.init)(sim.machine_mut());
        let out = sim.run(50_000_000).expect("halts");
        assert!(out.halted);
        assert!(w.check(sim.machine()), "medium scale matches its reference");
    }
}
