//! Q Sort: iterative quicksort (Lomuto partition) with an explicit work
//! stack — the low-DLP workload. A tiny per-partition pivot-sampling
//! count loop is the only vectorizable region; its trip (4) is short
//! enough that static vectorization costs more than it saves, while the
//! DSA's profitability gate leaves it scalar.

use dsa_compiler::{Body, DataType, Expr, KernelBuilder, LoopIr, Trip, Variant};
use dsa_cpu::DEFAULT_SP;
use dsa_isa::{Cond, MemSize, Reg};

use crate::data;
use crate::{BuiltWorkload, Scale};

pub(crate) fn build(variant: Variant, scale: Scale) -> BuiltWorkload {
    let n: u32 = match scale {
        Scale::Small => 128,
        Scale::Medium => 512,
        Scale::Paper => 2048,
        Scale::Large => 4096,
    };

    let mut kb = KernelBuilder::new(variant);
    let arr = kb.alloc("arr", DataType::I32, n);
    let sample = kb.alloc("sample", DataType::I32, 4);
    let locals = kb.alloc("locals", DataType::I32, 2);
    let la = kb.layout().buf(arr).base;
    let ll = kb.layout().buf(locals).base;
    let _ = sample;

    let (main_top, done);
    {
        let asm = kb.asm_mut();
        // Push the initial (lo=0, hi=n-1) range.
        asm.mov_imm(Reg::R0, 0);
        asm.push(Reg::R0);
        asm.mov_imm(Reg::R0, (n - 1) as i32);
        asm.push(Reg::R0);
        main_top = asm.here();
        done = asm.new_label();
        // Empty stack -> done.
        asm.mov_imm(Reg::R7, DEFAULT_SP as i32);
        asm.cmp(Reg::SP, Reg::R7);
        asm.b_to(Cond::Eq, done);
        asm.pop(Reg::R1); // hi
        asm.pop(Reg::R0); // lo
        asm.cmp(Reg::R0, Reg::R1);
        asm.b_to(Cond::Ge, main_top);
        // Spill lo/hi around the sample loop.
        asm.mov_imm(Reg::R12, ll as i32);
        asm.str(Reg::R0, Reg::R12, 0);
        asm.str(Reg::R1, Reg::R12, 4);
        // r11 = &arr[lo] for the sample loop.
        asm.lsl_imm(Reg::R11, Reg::R0, 2);
        asm.mov_imm(Reg::R9, la as i32);
        asm.add(Reg::R11, Reg::R9, Reg::R11);
    }

    // Pivot sampling: copy 3 candidates — a trip so short that static
    // vectorization strictly loses (setup + runtime checks, no full
    // vector), while the DSA's profitability gate leaves it alone.
    kb.emit_loop(LoopIr {
        name: "pivot_sample".into(),
        trip: Trip::Const(3),
        elem: DataType::I32,
        body: Body::Map { dst: sample.at(0), expr: Expr::load(arr.at(0)) },
        ptr_overrides: vec![(arr, Reg::R11)],
        ..LoopIr::default()
    });

    {
        let asm = kb.asm_mut();
        // Reload state.
        asm.mov_imm(Reg::R12, ll as i32);
        asm.ldr(Reg::R0, Reg::R12, 0); // lo
        asm.ldr(Reg::R1, Reg::R12, 4); // hi
        asm.mov_imm(Reg::R4, la as i32);
        // Lomuto: pivot = arr[hi].
        asm.ldr_idx(Reg::R5, Reg::R4, Reg::R1, 2, MemSize::W);
        asm.mov(Reg::R2, Reg::R0);
        asm.sub_imm(Reg::R2, Reg::R2, 1); // i = lo - 1
        asm.mov(Reg::R3, Reg::R0); // j = lo
        let part_top = asm.here();
        let part_done = asm.new_label();
        asm.cmp(Reg::R3, Reg::R1);
        asm.b_to(Cond::Ge, part_done);
        asm.ldr_idx(Reg::R6, Reg::R4, Reg::R3, 2, MemSize::W);
        asm.cmp(Reg::R6, Reg::R5);
        let no_swap = asm.new_label();
        asm.b_to(Cond::Gt, no_swap);
        asm.add_imm(Reg::R2, Reg::R2, 1);
        asm.ldr_idx(Reg::R7, Reg::R4, Reg::R2, 2, MemSize::W);
        asm.str_idx(Reg::R6, Reg::R4, Reg::R2, 2, MemSize::W);
        asm.str_idx(Reg::R7, Reg::R4, Reg::R3, 2, MemSize::W);
        asm.bind(no_swap);
        asm.add_imm(Reg::R3, Reg::R3, 1);
        asm.b(part_top);
        asm.bind(part_done);
        // p = i + 1; swap arr[p] <-> arr[hi].
        asm.add_imm(Reg::R2, Reg::R2, 1);
        asm.ldr_idx(Reg::R6, Reg::R4, Reg::R2, 2, MemSize::W);
        asm.ldr_idx(Reg::R7, Reg::R4, Reg::R1, 2, MemSize::W);
        asm.str_idx(Reg::R7, Reg::R4, Reg::R2, 2, MemSize::W);
        asm.str_idx(Reg::R6, Reg::R4, Reg::R1, 2, MemSize::W);
        // Push (lo, p-1) and (p+1, hi).
        asm.push(Reg::R0);
        asm.sub_imm(Reg::R8, Reg::R2, 1);
        asm.push(Reg::R8);
        asm.add_imm(Reg::R8, Reg::R2, 1);
        asm.push(Reg::R8);
        asm.push(Reg::R1);
        asm.b(main_top);
        asm.bind(done);
        asm.halt();
    }
    let kernel = kb.finish();

    let av = data::ints(0x61, n as usize, 0, 30_000);
    let mut sorted = av.clone();
    sorted.sort_unstable();
    let expected = crate::checksum_bytes(&data::i32_bytes(&sorted));

    BuiltWorkload {
        kernel,
        init: Box::new(move |m| {
            m.mem.write_bytes(la, &data::i32_bytes(&av));
        }),
        out_region: (la, n * 4),
        expected,
    }
}
