//! SUSAN-style edge detection: a conditional thresholding loop, a count
//! smoothing loop and a non-vectorizable histogram — the medium-DLP mix
//! of the paper.

use dsa_compiler::{Body, CmpOp, DataType, Expr, KernelBuilder, LoopIr, Trip, Variant};
use dsa_isa::{Cond, MemSize, Reg};

use crate::data;
use crate::{BuiltWorkload, Scale};

const THRESHOLD: i32 = 100;

pub(crate) fn build(variant: Variant, scale: Scale) -> BuiltWorkload {
    let n: u32 = match scale {
        Scale::Small => 512,
        Scale::Medium => 2048,
        Scale::Paper => 8192,
        Scale::Large => 16384,
    };

    let mut kb = KernelBuilder::new(variant);
    let input = kb.alloc("in", DataType::I32, n);
    let edge = kb.alloc("edge", DataType::I32, n);
    let out = kb.alloc("out", DataType::I32, n);
    let hist = kb.alloc("hist", DataType::I32, 32);
    let (li, lo, lh) = (
        kb.layout().buf(input).base,
        kb.layout().buf(edge).base, // (edge base unused by init)
        kb.layout().buf(hist).base,
    );
    let lout = kb.layout().buf(out).base;
    let _ = lo;

    // Phase 1 — conditional thresholding (the USAN response).
    kb.emit_loop(LoopIr {
        name: "susan_threshold".into(),
        trip: Trip::Const(n),
        elem: DataType::I32,
        body: Body::Select {
            cond_lhs: Expr::load(input.at(0)),
            cmp: CmpOp::Gt,
            cond_rhs: Expr::Imm(THRESHOLD),
            then_dst: edge.at(0),
            then_expr: Expr::load(input.at(0)) - Expr::Imm(THRESHOLD),
            else_arm: Some((edge.at(0), Expr::Imm(0))),
        },
        ..LoopIr::default()
    });

    // Phase 2 — smoothing of the response (count loop).
    kb.emit_loop(LoopIr {
        name: "susan_smooth".into(),
        trip: Trip::Const(n - 1),
        elem: DataType::I32,
        body: Body::Map {
            dst: out.at(0),
            expr: (Expr::load(edge.at(0)) + Expr::load(edge.at(1))).shr(1),
        },
        ..LoopIr::default()
    });

    // Phase 3 — brightness histogram (indirect addressing: never
    // vectorized by anything).
    {
        let asm = kb.asm_mut();
        asm.mov_imm(Reg::R2, li as i32);
        asm.mov_imm(Reg::R3, lh as i32);
        asm.mov_imm(Reg::R0, 0);
        let top = asm.here();
        asm.ldr_post(Reg::R6, Reg::R2, 4);
        asm.and_imm(Reg::R6, Reg::R6, 31);
        asm.ldr_idx(Reg::R7, Reg::R3, Reg::R6, 2, MemSize::W);
        asm.add_imm(Reg::R7, Reg::R7, 1);
        asm.str_idx(Reg::R7, Reg::R3, Reg::R6, 2, MemSize::W);
        asm.add_imm(Reg::R0, Reg::R0, 1);
        asm.cmp_imm(Reg::R0, n as i16);
        asm.b_to(Cond::Ne, top);
        asm.halt();
    }
    let kernel = kb.finish();

    let iv = data::ints(0x51, n as usize, 0, 256);
    let edge_ref: Vec<i32> =
        iv.iter().map(|&v| if v > THRESHOLD { v - THRESHOLD } else { 0 }).collect();
    let out_ref: Vec<i32> = (0..(n - 1) as usize)
        .map(|i| ((edge_ref[i] + edge_ref[i + 1]) as u32 >> 1) as i32)
        .collect();
    let expected = crate::checksum_bytes(&data::i32_bytes(&out_ref));

    BuiltWorkload {
        kernel,
        init: Box::new(move |m| {
            m.mem.write_bytes(li, &data::i32_bytes(&iv));
        }),
        out_region: (lout, (n - 1) * 4),
        expected,
    }
}
