//! Gaussian filter: two passes of a 3-tap smoothing window.
//!
//! `tmp[i] = (in[i] + 2·in[i+1] + in[i+2]) >> 2`, then the same window
//! over `tmp` — two count loops with multi-offset load streams.

use dsa_compiler::{Body, BufId, DataType, Expr, KernelBuilder, LoopIr, Trip, Variant};

use crate::data;
use crate::{BuiltWorkload, Scale};

fn window(src: BufId) -> Expr {
    (Expr::load(src.at(0)) + Expr::Imm(2) * Expr::load(src.at(1)) + Expr::load(src.at(2))).shr(2)
}

pub(crate) fn build(variant: Variant, scale: Scale) -> BuiltWorkload {
    let n: u32 = match scale {
        Scale::Small => 512,
        Scale::Medium => 2048,
        Scale::Paper => 8192,
        Scale::Large => 16384,
    };

    let mut kb = KernelBuilder::new(variant);
    let input = kb.alloc("in", DataType::I32, n);
    let tmp = kb.alloc("tmp", DataType::I32, n);
    let out = kb.alloc("out", DataType::I32, n);
    let (li, lo) = (kb.layout().buf(input).base, kb.layout().buf(out).base);

    kb.emit_loop(LoopIr {
        name: "gauss_pass1".into(),
        trip: Trip::Const(n - 2),
        elem: DataType::I32,
        body: Body::Map { dst: tmp.at(0), expr: window(input) },
        ..LoopIr::default()
    });
    kb.emit_loop(LoopIr {
        name: "gauss_pass2".into(),
        trip: Trip::Const(n - 4),
        elem: DataType::I32,
        body: Body::Map { dst: out.at(0), expr: window(tmp) },
        ..LoopIr::default()
    });
    kb.halt();
    let kernel = kb.finish();

    let iv = data::ints(0x41, n as usize, 0, 256);
    let pass = |src: &[i32], count: usize| -> Vec<i32> {
        (0..count)
            .map(|i| ((src[i] + 2 * src[i + 1] + src[i + 2]) as u32 >> 2) as i32)
            .collect()
    };
    let t = pass(&iv, (n - 2) as usize);
    let o = pass(&t, (n - 4) as usize);
    let expected = crate::checksum_bytes(&data::i32_bytes(&o));

    BuiltWorkload {
        kernel,
        init: Box::new(move |m| {
            m.mem.write_bytes(li, &data::i32_bytes(&iv));
        }),
        out_region: (lo, (n - 4) * 4),
        expected,
    }
}
