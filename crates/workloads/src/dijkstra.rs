//! Dijkstra single-source shortest paths over a dense weight matrix.
//!
//! The hot relax loop is a *conditional* loop (`if new < dist[j] then
//! dist[j] = new`) that only the extended/full DSA vectorizes; the
//! min-scan uses indexed addressing and stays scalar everywhere — the
//! paper's "low static DLP, high dynamic DLP" case.

use dsa_compiler::{Body, CmpOp, DataType, Expr, KernelBuilder, LoopIr, Trip, Variant};
use dsa_isa::{Cond, MemSize, Reg};

use crate::data;
use crate::{BuiltWorkload, Scale};

const INF: i32 = 0x000F_FFFF;

pub(crate) fn build(variant: Variant, scale: Scale) -> BuiltWorkload {
    let n: u32 = match scale {
        Scale::Small => 12,
        Scale::Medium => 24,
        Scale::Paper => 64,
        Scale::Large => 96,
    };

    let mut kb = KernelBuilder::new(variant);
    let w = kb.alloc("w", DataType::I32, n * n);
    let dist = kb.alloc("dist", DataType::I32, n);
    let visited = kb.alloc("visited", DataType::I32, n);
    let scratch = kb.alloc("scratch", DataType::I32, 4);
    let locals = kb.alloc("locals", DataType::I32, 2);
    let (lw, ld, lv, ll) = (
        kb.layout().buf(w).base,
        kb.layout().buf(dist).base,
        kb.layout().buf(visited).base,
        kb.layout().buf(locals).base,
    );

    // dist[i] = INF (count loop, vectorizable by every system).
    kb.emit_loop(LoopIr {
        name: "dijkstra_init".into(),
        trip: Trip::Const(n),
        elem: DataType::I32,
        body: Body::Map { dst: dist.at(0), expr: Expr::Imm(INF) },
        ..LoopIr::default()
    });

    let round_top;
    {
        let asm = kb.asm_mut();
        // dist[0] = 0; round counter in locals[0].
        asm.mov_imm(Reg::R2, ld as i32);
        asm.mov_imm(Reg::R6, 0);
        asm.str(Reg::R6, Reg::R2, 0);
        asm.mov_imm(Reg::R12, ll as i32);
        asm.str(Reg::R6, Reg::R12, 0);
        round_top = asm.here();
        // --- min-scan (indexed, non-vectorizable): find unvisited u with
        // minimal dist.
        asm.mov_imm(Reg::R2, ld as i32); // dist base
        asm.mov_imm(Reg::R3, lv as i32); // visited base
        asm.mov_imm(Reg::R7, INF + 1); // best
        asm.mov_imm(Reg::R8, 0); // u
        asm.mov_imm(Reg::R6, 0); // j
        let scan_top = asm.here();
        let skip = asm.new_label();
        asm.ldr_idx(Reg::R9, Reg::R3, Reg::R6, 2, MemSize::W);
        asm.cmp_imm(Reg::R9, 0);
        asm.b_to(Cond::Ne, skip);
        asm.ldr_idx(Reg::R9, Reg::R2, Reg::R6, 2, MemSize::W);
        asm.cmp(Reg::R9, Reg::R7);
        asm.b_to(Cond::Ge, skip);
        asm.mov(Reg::R7, Reg::R9); // best = dist[j]
        asm.mov(Reg::R8, Reg::R6); // u = j
        asm.bind(skip);
        asm.add_imm(Reg::R6, Reg::R6, 1);
        asm.cmp_imm(Reg::R6, n as i16);
        asm.b_to(Cond::Ne, scan_top);
        // visited[u] = 1; spill u to locals[1].
        asm.mov_imm(Reg::R9, 1);
        asm.str_idx(Reg::R9, Reg::R3, Reg::R8, 2, MemSize::W);
        asm.mov_imm(Reg::R12, ll as i32);
        asm.str(Reg::R8, Reg::R12, 4);
        // r11 = &w[u*n] for the snapshot loop.
        asm.mov_imm(Reg::R9, (n * 4) as i32);
        asm.mul(Reg::R11, Reg::R8, Reg::R9);
        asm.mov_imm(Reg::R9, lw as i32);
        asm.add(Reg::R11, Reg::R9, Reg::R11);
    }

    // Per-round bookkeeping: snapshot the first entries of the row (a
    // trip-3 loop the auto-vectorizer versions at a net loss).
    kb.emit_loop(LoopIr {
        name: "dijkstra_snapshot".into(),
        trip: Trip::Const(3),
        elem: DataType::I32,
        body: Body::Map { dst: scratch.at(0), expr: Expr::load(w.at(0)) },
        ptr_overrides: vec![(w, Reg::R11)],
        ..LoopIr::default()
    });
    {
        // The snapshot clobbered the loop registers; recompute r10/r11.
        let asm = kb.asm_mut();
        asm.mov_imm(Reg::R12, ll as i32);
        asm.ldr(Reg::R8, Reg::R12, 4); // u (spilled below)
        asm.mov_imm(Reg::R2, ld as i32);
        asm.ldr_idx(Reg::R10, Reg::R2, Reg::R8, 2, MemSize::W);
        asm.mov_imm(Reg::R9, (n * 4) as i32);
        asm.mul(Reg::R11, Reg::R8, Reg::R9);
        asm.mov_imm(Reg::R9, lw as i32);
        asm.add(Reg::R11, Reg::R9, Reg::R11);
    }

    // --- relax: the conditional loop.
    kb.emit_loop(LoopIr {
        name: "dijkstra_relax".into(),
        trip: Trip::Const(n),
        elem: DataType::I32,
        body: Body::Select {
            cond_lhs: Expr::load(w.at(0)) + Expr::Var(0),
            cmp: CmpOp::Lt,
            cond_rhs: Expr::load(dist.at(0)),
            then_dst: dist.at(0),
            then_expr: Expr::load(w.at(0)) + Expr::Var(0),
            else_arm: None,
        },
        ptr_overrides: vec![(w, Reg::R11)],
        ..LoopIr::default()
    });

    {
        let asm = kb.asm_mut();
        // round++ < n ?
        asm.mov_imm(Reg::R12, ll as i32);
        asm.ldr(Reg::R6, Reg::R12, 0);
        asm.add_imm(Reg::R6, Reg::R6, 1);
        asm.str(Reg::R6, Reg::R12, 0);
        asm.cmp_imm(Reg::R6, n as i16);
        asm.b_to(Cond::Lt, round_top);
        asm.halt();
    }
    let kernel = kb.finish();

    // Weight matrix: 1..100, diagonal 0.
    let mut wv = data::ints(0x71, (n * n) as usize, 1, 100);
    for i in 0..n as usize {
        wv[i * n as usize + i] = 0;
    }
    // Reference mirroring the kernel exactly (n rounds, relax all j).
    let mut dref = vec![INF; n as usize];
    let mut vref = vec![false; n as usize];
    dref[0] = 0;
    for _ in 0..n as usize {
        let mut best = INF + 1;
        let mut u = 0usize;
        for j in 0..n as usize {
            if !vref[j] && dref[j] < best {
                best = dref[j];
                u = j;
            }
        }
        vref[u] = true;
        for j in 0..n as usize {
            let nd = wv[u * n as usize + j] + dref[u];
            if nd < dref[j] {
                dref[j] = nd;
            }
        }
    }
    let expected = crate::checksum_bytes(&data::i32_bytes(&dref));

    BuiltWorkload {
        kernel,
        init: Box::new(move |m| {
            m.mem.write_bytes(lw, &data::i32_bytes(&wv));
        }),
        out_region: (ld, n * 4),
        expected,
    }
}
