//! Microkernels: one minimal kernel per loop class, used by the
//! per-loop-type experiments (DSA energy per scenario, Table-1
//! inhibitor demonstration) and the ablation benches.

use dsa_compiler::{
    regs, BinOp, Body, CmpOp, DataType, Expr, KernelBuilder, LoopIr, Trip, Variant,
};
use dsa_isa::Reg;

use crate::data;
use crate::{BuiltWorkload, Scale};

/// The loop classes exercised by the microkernel suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Micro {
    /// Fixed-trip element-wise map.
    Count,
    /// Map whose value flows through a called function.
    Function,
    /// `if a[i] >= t { v = 2a } else { v = a + 1 }`.
    Conditional,
    /// Copy-until-zero over bytes.
    Sentinel,
    /// Map with a runtime trip count.
    DynamicRange,
    /// `v[i] = v[i-16] + b[i]` — bounded cross-iteration dependency.
    Partial,
    /// Table lookup through an index array (indirect addressing).
    Gather,
    /// Sum reduction into a scalar.
    Reduce,
    /// A 2D loop nest with nothing between the loops — fusable into a
    /// single rows×cols loop (§4.6.3).
    NestFused,
    /// A 4-tap FIR filter over 16-bit samples (8 vector lanes) — the
    /// DSP shape the paper's introduction motivates.
    Fir,
}

impl Micro {
    /// Every microkernel.
    pub fn all() -> [Micro; 10] {
        [
            Micro::Count,
            Micro::Function,
            Micro::Conditional,
            Micro::Sentinel,
            Micro::DynamicRange,
            Micro::Partial,
            Micro::Gather,
            Micro::Reduce,
            Micro::NestFused,
            Micro::Fir,
        ]
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Micro::Count => "count",
            Micro::Function => "function",
            Micro::Conditional => "conditional",
            Micro::Sentinel => "sentinel",
            Micro::DynamicRange => "dynamic-range",
            Micro::Partial => "partial",
            Micro::Gather => "gather",
            Micro::Reduce => "reduce",
            Micro::NestFused => "nest-fused",
            Micro::Fir => "fir-i16",
        }
    }
}

/// Builds one microkernel over `n` elements.
pub fn build(micro: Micro, variant: Variant, scale: Scale) -> BuiltWorkload {
    let n: u32 = match scale {
        Scale::Small => 256,
        Scale::Medium => 1024,
        Scale::Paper => 4096,
        Scale::Large => 8192,
    };
    match micro {
        Micro::Count => count(variant, n),
        Micro::Function => function(variant, n),
        Micro::Conditional => conditional(variant, n),
        Micro::Sentinel => sentinel(variant, n),
        Micro::DynamicRange => dynamic_range(variant, n),
        Micro::Partial => partial(variant, n),
        Micro::Gather => gather(variant, n),
        Micro::Reduce => reduce(variant, n),
        Micro::NestFused => nest_fused(variant, n),
        Micro::Fir => fir(variant, n),
    }
}

fn count(variant: Variant, n: u32) -> BuiltWorkload {
    let mut kb = KernelBuilder::new(variant);
    let a = kb.alloc("a", DataType::I32, n);
    let b = kb.alloc("b", DataType::I32, n);
    let v = kb.alloc("v", DataType::I32, n);
    let (la, lb, lv) = (kb.layout().buf(a).base, kb.layout().buf(b).base, kb.layout().buf(v).base);
    kb.emit_loop(LoopIr {
        name: "micro_count".into(),
        trip: Trip::Const(n),
        elem: DataType::I32,
        body: Body::Map { dst: v.at(0), expr: Expr::load(a.at(0)) + Expr::load(b.at(0)) },
        ..LoopIr::default()
    });
    kb.halt();
    let kernel = kb.finish();
    let av = data::ints(1, n as usize, -1000, 1000);
    let bv = data::ints(2, n as usize, -1000, 1000);
    let reference: Vec<i32> = av.iter().zip(&bv).map(|(x, y)| x.wrapping_add(*y)).collect();
    let expected = crate::checksum_bytes(&data::i32_bytes(&reference));
    BuiltWorkload {
        kernel,
        init: Box::new(move |m| {
            m.mem.write_bytes(la, &data::i32_bytes(&av));
            m.mem.write_bytes(lb, &data::i32_bytes(&bv));
        }),
        out_region: (lv, n * 4),
        expected,
    }
}

fn function(variant: Variant, n: u32) -> BuiltWorkload {
    let mut kb = KernelBuilder::new(variant);
    let a = kb.alloc("a", DataType::I32, n);
    let v = kb.alloc("v", DataType::I32, n);
    let (la, lv) = (kb.layout().buf(a).base, kb.layout().buf(v).base);
    // f(x) = 3x (as add chains so the body stays NEON-expressible).
    let f = kb.define_function(|asm| {
        asm.add(Reg::R9, regs::SCRATCH, regs::SCRATCH);
        asm.add(regs::SCRATCH, Reg::R9, regs::SCRATCH);
        asm.bx_lr();
    });
    kb.emit_loop(LoopIr {
        name: "micro_function".into(),
        trip: Trip::Const(n),
        elem: DataType::I32,
        body: Body::Map { dst: v.at(0), expr: Expr::Call(f, Box::new(Expr::load(a.at(0)))) },
        ..LoopIr::default()
    });
    kb.halt();
    let kernel = kb.finish();
    let av = data::ints(3, n as usize, -1000, 1000);
    let reference: Vec<i32> = av.iter().map(|x| x.wrapping_mul(3)).collect();
    let expected = crate::checksum_bytes(&data::i32_bytes(&reference));
    BuiltWorkload {
        kernel,
        init: Box::new(move |m| m.mem.write_bytes(la, &data::i32_bytes(&av))),
        out_region: (lv, n * 4),
        expected,
    }
}

fn conditional(variant: Variant, n: u32) -> BuiltWorkload {
    let mut kb = KernelBuilder::new(variant);
    let a = kb.alloc("a", DataType::I32, n);
    let v = kb.alloc("v", DataType::I32, n);
    let (la, lv) = (kb.layout().buf(a).base, kb.layout().buf(v).base);
    kb.emit_loop(LoopIr {
        name: "micro_conditional".into(),
        trip: Trip::Const(n),
        elem: DataType::I32,
        body: Body::Select {
            cond_lhs: Expr::load(a.at(0)),
            cmp: CmpOp::Ge,
            cond_rhs: Expr::Imm(0),
            then_dst: v.at(0),
            then_expr: Expr::load(a.at(0)) + Expr::load(a.at(0)),
            else_arm: Some((v.at(0), Expr::load(a.at(0)) + Expr::Imm(1))),
        },
        ..LoopIr::default()
    });
    kb.halt();
    let kernel = kb.finish();
    let av = data::ints(4, n as usize, -1000, 1000);
    let reference: Vec<i32> =
        av.iter().map(|&x| if x >= 0 { x + x } else { x + 1 }).collect();
    let expected = crate::checksum_bytes(&data::i32_bytes(&reference));
    BuiltWorkload {
        kernel,
        init: Box::new(move |m| m.mem.write_bytes(la, &data::i32_bytes(&av))),
        out_region: (lv, n * 4),
        expected,
    }
}

fn sentinel(variant: Variant, n: u32) -> BuiltWorkload {
    let mut kb = KernelBuilder::new(variant);
    let src = kb.alloc("src", DataType::I8, n);
    let dst = kb.alloc("dst", DataType::I8, n);
    let (ls, ld) = (kb.layout().buf(src).base, kb.layout().buf(dst).base);
    kb.emit_loop(LoopIr {
        name: "micro_sentinel".into(),
        trip: Trip::Sentinel { buf: src, value: 0 },
        elem: DataType::I8,
        body: Body::Map { dst: dst.at(0), expr: Expr::load(src.at(0)) + Expr::Imm(1) },
        ..LoopIr::default()
    });
    kb.halt();
    let kernel = kb.finish();
    let live = (n - n / 8) as usize; // zero terminator after `live` bytes
    let sv: Vec<i32> = data::ints(5, live, 1, 100);
    let mut reference = vec![0u8; n as usize];
    for (i, &x) in sv.iter().enumerate() {
        reference[i] = (x + 1) as u8;
    }
    let expected = crate::checksum_bytes(&reference);
    BuiltWorkload {
        kernel,
        init: Box::new(move |m| {
            for (i, &x) in sv.iter().enumerate() {
                m.mem.write_u8(ls + i as u32, x as u8);
            }
        }),
        out_region: (ld, n),
        expected,
    }
}

fn dynamic_range(variant: Variant, n: u32) -> BuiltWorkload {
    let mut kb = KernelBuilder::new(variant);
    let a = kb.alloc("a", DataType::I32, n);
    let v = kb.alloc("v", DataType::I32, n);
    let params = kb.alloc("params", DataType::I32, 1);
    let (la, lv, lp) = (
        kb.layout().buf(a).base,
        kb.layout().buf(v).base,
        kb.layout().buf(params).base,
    );
    let n_rt = n - n / 8;
    {
        let asm = kb.asm_mut();
        asm.mov_imm(Reg::R12, lp as i32);
        asm.ldr(Reg::R11, Reg::R12, 0);
    }
    kb.emit_loop(LoopIr {
        name: "micro_drl".into(),
        trip: Trip::Reg(Reg::R11),
        elem: DataType::I32,
        body: Body::Map { dst: v.at(0), expr: Expr::load(a.at(0)) * Expr::Imm(5) },
        ..LoopIr::default()
    });
    kb.halt();
    let kernel = kb.finish();
    let av = data::ints(6, n as usize, -1000, 1000);
    let reference: Vec<i32> = (0..n as usize)
        .map(|i| if i < n_rt as usize { av[i].wrapping_mul(5) } else { 0 })
        .collect();
    let expected = crate::checksum_bytes(&data::i32_bytes(&reference));
    BuiltWorkload {
        kernel,
        init: Box::new(move |m| {
            m.mem.write_bytes(la, &data::i32_bytes(&av));
            m.mem.write_u32(lp, n_rt);
        }),
        out_region: (lv, n * 4),
        expected,
    }
}

fn partial(variant: Variant, n: u32) -> BuiltWorkload {
    let mut kb = KernelBuilder::new(variant);
    let b = kb.alloc("b", DataType::I32, n);
    let v = kb.alloc("v", DataType::I32, n + 16);
    let (lb, lv) = (kb.layout().buf(b).base, kb.layout().buf(v).base);
    kb.emit_loop(LoopIr {
        name: "micro_partial".into(),
        trip: Trip::Const(n),
        elem: DataType::I32,
        body: Body::Map { dst: v.at(16), expr: Expr::load(v.at(0)) + Expr::load(b.at(0)) },
        ..LoopIr::default()
    });
    kb.halt();
    let kernel = kb.finish();
    let bv = data::ints(7, n as usize, -100, 100);
    let mut vref = vec![0i32; (n + 16) as usize];
    vref[..16].fill(3); // seeded prefix
    for i in 0..n as usize {
        vref[i + 16] = vref[i].wrapping_add(bv[i]);
    }
    let expected = crate::checksum_bytes(&data::i32_bytes(&vref[16..]));
    BuiltWorkload {
        kernel,
        init: Box::new(move |m| {
            m.mem.write_bytes(lb, &data::i32_bytes(&bv));
            for i in 0..16u32 {
                m.mem.write_u32(lv + 4 * i, 3);
            }
        }),
        out_region: (lv + 64, n * 4),
        expected,
    }
}

fn gather(variant: Variant, n: u32) -> BuiltWorkload {
    let mut kb = KernelBuilder::new(variant);
    let idx = kb.alloc("idx", DataType::I32, n);
    let table = kb.alloc("table", DataType::I32, 64);
    let v = kb.alloc("v", DataType::I32, n);
    let (li, lt, lv) = (
        kb.layout().buf(idx).base,
        kb.layout().buf(table).base,
        kb.layout().buf(v).base,
    );
    kb.emit_loop(LoopIr {
        name: "micro_gather".into(),
        trip: Trip::Const(n),
        elem: DataType::I32,
        body: Body::Map {
            dst: v.at(0),
            expr: Expr::Gather(table, Box::new(Expr::load(idx.at(0)))),
        },
        ..LoopIr::default()
    });
    kb.halt();
    let kernel = kb.finish();
    let iv = data::ints(8, n as usize, 0, 64);
    let tv = data::ints(9, 64, -1000, 1000);
    let reference: Vec<i32> = iv.iter().map(|&i| tv[i as usize]).collect();
    let expected = crate::checksum_bytes(&data::i32_bytes(&reference));
    BuiltWorkload {
        kernel,
        init: Box::new(move |m| {
            m.mem.write_bytes(li, &data::i32_bytes(&iv));
            m.mem.write_bytes(lt, &data::i32_bytes(&tv));
        }),
        out_region: (lv, n * 4),
        expected,
    }
}

fn fir(variant: Variant, n: u32) -> BuiltWorkload {
    // y[i] = (3 x[i] + 7 x[i+1] + 7 x[i+2] + 3 x[i+3]) >> 4 on i16
    // samples: four load streams, four hoisted coefficients, 8 lanes.
    let taps: [i32; 4] = [3, 7, 7, 3];
    let mut kb = KernelBuilder::new(variant);
    let x = kb.alloc("x", DataType::I16, n + 4);
    let y = kb.alloc("y", DataType::I16, n);
    let (lx, ly) = (kb.layout().buf(x).base, kb.layout().buf(y).base);
    let expr = (Expr::Imm(taps[0]) * Expr::load(x.at(0))
        + Expr::Imm(taps[1]) * Expr::load(x.at(1))
        + Expr::Imm(taps[2]) * Expr::load(x.at(2))
        + Expr::Imm(taps[3]) * Expr::load(x.at(3)))
    .shr(4);
    kb.emit_loop(LoopIr {
        name: "micro_fir".into(),
        trip: Trip::Const(n),
        elem: DataType::I16,
        body: Body::Map { dst: y.at(0), expr },
        ..LoopIr::default()
    });
    kb.halt();
    let kernel = kb.finish();
    let xv = data::ints(12, (n + 4) as usize, 0, 1024);
    let reference: Vec<i32> = (0..n as usize)
        .map(|i| {
            let acc: i32 = (0..4).map(|t| taps[t] * xv[i + t]).sum();
            ((acc as u16 as u32) >> 4) as u16 as i32
        })
        .collect();
    let ref_bytes: Vec<u8> =
        reference.iter().flat_map(|v| (*v as u16).to_le_bytes()).collect();
    let expected = crate::checksum_bytes(&ref_bytes);
    BuiltWorkload {
        kernel,
        init: Box::new(move |m| {
            for (i, &v) in xv.iter().enumerate() {
                m.mem.write_u16(lx + 2 * i as u32, v as u16);
            }
        }),
        out_region: (ly, n * 2),
        expected,
    }
}

fn nest_fused(variant: Variant, n: u32) -> BuiltWorkload {
    // rows x cols grid, rows stored contiguously: the outer loop only
    // advances the row pointers, so the nest fuses.
    let cols = 32u32;
    let rows = (n / cols).max(4);
    let total = rows * cols;
    let mut kb = KernelBuilder::new(variant);
    let src = kb.alloc("src", DataType::I32, total);
    let dst = kb.alloc("dst", DataType::I32, total);
    let (ls, ld) = (kb.layout().buf(src).base, kb.layout().buf(dst).base);
    let outer_top;
    {
        let asm = kb.asm_mut();
        asm.mov_imm(Reg::R10, ls as i32);
        asm.mov_imm(Reg::R11, ld as i32);
        asm.mov_imm(Reg::LR, 0);
        outer_top = asm.here();
    }
    kb.emit_loop(LoopIr {
        name: "nest_inner".into(),
        trip: Trip::Const(cols),
        elem: DataType::I32,
        body: Body::Map { dst: dst.at(0), expr: Expr::load(src.at(0)) + Expr::Imm(1) },
        ptr_overrides: vec![(src, Reg::R10), (dst, Reg::R11)],
        ..LoopIr::default()
    });
    {
        let asm = kb.asm_mut();
        asm.add_imm(Reg::R10, Reg::R10, (cols * 4) as i16);
        asm.add_imm(Reg::R11, Reg::R11, (cols * 4) as i16);
        asm.add_imm(Reg::LR, Reg::LR, 1);
        asm.cmp_imm(Reg::LR, rows as i16);
        asm.b_to(dsa_isa::Cond::Ne, outer_top);
        asm.halt();
    }
    let kernel = kb.finish();
    let sv = data::ints(11, total as usize, -1000, 1000);
    let reference: Vec<i32> = sv.iter().map(|x| x.wrapping_add(1)).collect();
    let expected = crate::checksum_bytes(&data::i32_bytes(&reference));
    BuiltWorkload {
        kernel,
        init: Box::new(move |m| m.mem.write_bytes(ls, &data::i32_bytes(&sv))),
        out_region: (ld, total * 4),
        expected,
    }
}

fn reduce(variant: Variant, n: u32) -> BuiltWorkload {
    let mut kb = KernelBuilder::new(variant);
    let a = kb.alloc("a", DataType::I32, n);
    let out = kb.alloc("out", DataType::I32, 1);
    let (la, lo) = (kb.layout().buf(a).base, kb.layout().buf(out).base);
    kb.emit_loop(LoopIr {
        name: "micro_reduce".into(),
        trip: Trip::Const(n),
        elem: DataType::I32,
        body: Body::Reduce {
            op: BinOp::Add,
            expr: Expr::load(a.at(0)),
            out: out.at(0),
            init: 0,
        },
        ..LoopIr::default()
    });
    kb.halt();
    let kernel = kb.finish();
    let av = data::ints(10, n as usize, -1000, 1000);
    let total: i32 = av.iter().fold(0i32, |acc, &x| acc.wrapping_add(x));
    let expected = crate::checksum_bytes(&total.to_le_bytes());
    BuiltWorkload {
        kernel,
        init: Box::new(move |m| m.mem.write_bytes(la, &data::i32_bytes(&av))),
        out_region: (lo, 4),
        expected,
    }
}
