//! The per-loop lowering reports of every workload: which loops exist,
//! and which each static baseline vectorizes — the workload-level
//! counterpart of the dissertation's Table 1.

use dsa_compiler::{InhibitReason, Variant};
use dsa_workloads::{build, Scale, WorkloadId};

fn reports(id: WorkloadId, variant: Variant) -> Vec<(String, bool, Option<InhibitReason>)> {
    build(id, variant, Scale::Small)
        .kernel
        .reports
        .iter()
        .map(|r| (r.name.clone(), r.vectorized, r.inhibit))
        .collect()
}

#[test]
fn matmul_inner_loop_vectorizes_statically() {
    for v in [Variant::AutoVec, Variant::HandVec] {
        let r = reports(WorkloadId::MatMul, v);
        assert_eq!(r.len(), 1);
        assert!(r[0].1, "{v:?} vectorizes the saxpy loop");
    }
}

#[test]
fn susan_reports_by_variant() {
    let r = reports(WorkloadId::SusanEdges, Variant::AutoVec);
    let find = |n: &str| r.iter().find(|(name, ..)| name == n).expect("loop present");
    assert_eq!(find("susan_threshold").2, Some(InhibitReason::ConditionalCode));
    assert!(find("susan_smooth").1);
}

#[test]
fn bitcounts_reports_by_variant() {
    let auto = reports(WorkloadId::BitCounts, Variant::AutoVec);
    let vectorized: Vec<&str> =
        auto.iter().filter(|(_, v, _)| *v).map(|(n, ..)| n.as_str()).collect();
    assert_eq!(vectorized, ["bitcnt_init"], "autovec only reaches the static init");
    let find = |n: &str| auto.iter().find(|(name, ..)| name == n).expect("loop present");
    // Both the runtime trip and the conditional body inhibit; the trip
    // check fires first.
    assert_eq!(find("bitcnt_test").2, Some(InhibitReason::IterationCountNotFixed));
    assert_eq!(find("bitcnt_ntbl").2, Some(InhibitReason::IndirectAddressing));
    assert_eq!(find("bitcnt_sum").2, Some(InhibitReason::IterationCountNotFixed));

    // The hand-coder also vectorizes the runtime-trip integer reduction.
    let hand = reports(WorkloadId::BitCounts, Variant::HandVec);
    let find = |n: &str| hand.iter().find(|(name, ..)| name == n).expect("loop present");
    assert!(find("bitcnt_sum").1, "handvec vectorizes the add-reduction");
}

#[test]
fn dijkstra_reports_by_variant() {
    let r = reports(WorkloadId::Dijkstra, Variant::AutoVec);
    let find = |n: &str| r.iter().find(|(name, ..)| name == n).expect("loop present");
    assert!(find("dijkstra_init").1, "plain init loop vectorizes");
    assert_eq!(find("dijkstra_relax").2, Some(InhibitReason::ConditionalCode));
    assert!(find("dijkstra_snapshot").1, "the tiny trap loop is versioned anyway");
}

#[test]
fn qsort_trap_loop_is_vectorized_by_autovec_only_profitably_by_nobody() {
    let auto = reports(WorkloadId::QSort, Variant::AutoVec);
    assert!(auto[0].1, "autovec versions the 3-trip sample loop");
    let scalar = reports(WorkloadId::QSort, Variant::Scalar);
    assert!(!scalar[0].1);
}

#[test]
fn scalar_variant_never_vectorizes() {
    for id in WorkloadId::all() {
        for r in reports(id, Variant::Scalar) {
            assert!(!r.1, "{}: loop {} must stay scalar", id.name(), r.0);
        }
    }
}

#[test]
fn every_workload_has_named_loops() {
    for id in WorkloadId::all() {
        let r = reports(id, Variant::Scalar);
        assert!(!r.is_empty(), "{} declares loops", id.name());
        for (name, ..) in &r {
            assert!(!name.is_empty());
        }
    }
}
