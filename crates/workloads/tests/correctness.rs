//! Every workload must reproduce its Rust reference result under every
//! compiler variant and under the DSA.

use dsa_compiler::Variant;
use dsa_core::{Dsa, DsaConfig};
use dsa_cpu::{CpuConfig, Simulator};
use dsa_workloads::{build, micro, BuiltWorkload, Scale, WorkloadId};

const FUEL: u64 = 100_000_000;

fn run(w: &BuiltWorkload) -> Simulator {
    let mut sim = Simulator::new(w.kernel.program.clone(), CpuConfig::default());
    (w.init)(sim.machine_mut());
    let out = sim.run(FUEL).expect("execution ok");
    assert!(out.halted, "workload must halt");
    sim
}

fn run_with_dsa(w: &BuiltWorkload, config: DsaConfig) -> (Simulator, Dsa) {
    let mut dsa = Dsa::new(config);
    let mut sim = Simulator::new(w.kernel.program.clone(), CpuConfig::default());
    (w.init)(sim.machine_mut());
    let out = sim.run_with_hook(FUEL, &mut dsa).expect("execution ok");
    assert!(out.halted, "workload must halt");
    (sim, dsa)
}

#[test]
fn all_workloads_all_variants_match_reference() {
    for id in WorkloadId::all() {
        for variant in [Variant::Scalar, Variant::AutoVec, Variant::HandVec] {
            let w = build(id, variant, Scale::Small);
            let sim = run(&w);
            assert!(
                w.check(sim.machine()),
                "{} [{variant:?}]: got {:#x}, want {:#x}",
                id.name(),
                w.actual(sim.machine()),
                w.expected
            );
        }
    }
}

#[test]
fn all_workloads_under_full_dsa_match_reference() {
    for id in WorkloadId::all() {
        let w = build(id, Variant::Scalar, Scale::Small);
        let (sim, _dsa) = run_with_dsa(&w, DsaConfig::full());
        assert!(w.check(sim.machine()), "{} under full DSA", id.name());
    }
}

#[test]
fn all_workloads_under_original_dsa_match_reference() {
    for id in WorkloadId::all() {
        let w = build(id, Variant::Scalar, Scale::Small);
        let (sim, _dsa) = run_with_dsa(&w, DsaConfig::original());
        assert!(w.check(sim.machine()), "{} under original DSA", id.name());
    }
}

#[test]
fn all_microkernels_all_variants_match_reference() {
    for m in micro::Micro::all() {
        for variant in [Variant::Scalar, Variant::AutoVec, Variant::HandVec] {
            let w = micro::build(m, variant, Scale::Small);
            let sim = run(&w);
            assert!(w.check(sim.machine()), "micro {} [{variant:?}]", m.name());
        }
        let w = micro::build(m, Variant::Scalar, Scale::Small);
        let (sim, _dsa) = run_with_dsa(&w, DsaConfig::full());
        assert!(w.check(sim.machine()), "micro {} under DSA", m.name());
    }
}

#[test]
fn dsa_vectorizes_the_expected_workloads() {
    use dsa_core::LoopClass;
    // RGB-Gray: one big count loop, vectorized even by the original DSA.
    let w = build(WorkloadId::RgbGray, Variant::Scalar, Scale::Small);
    let (_, dsa) = run_with_dsa(&w, DsaConfig::original());
    assert!(dsa.stats().loops_vectorized >= 1);
    assert_eq!(dsa.census().count(LoopClass::Count), 1);

    // BitCounts: the original DSA only reaches the static init loop …
    let w = build(WorkloadId::BitCounts, Variant::Scalar, Scale::Small);
    let (sim_o, dsa_o) = run_with_dsa(&w, DsaConfig::original());
    assert!(dsa_o.stats().loops_vectorized <= 1, "init loop at most");
    assert_eq!(dsa_o.census().count(LoopClass::Conditional), 1, "bit-test loop gated off");
    // … while the extended DSA covers the conditional dynamic-range
    // rounds too and runs strictly faster.
    let (sim_e, dsa_e) = run_with_dsa(&w, DsaConfig::extended());
    assert!(
        dsa_e.stats().loops_vectorized > dsa_o.stats().loops_vectorized,
        "extended DSA handles BitCounts rounds"
    );
    assert!(sim_e.outcome().cycles < sim_o.outcome().cycles);

    // Dijkstra: the relax loop is conditional.
    let w = build(WorkloadId::Dijkstra, Variant::Scalar, Scale::Small);
    let (_, dsa) = run_with_dsa(&w, DsaConfig::extended());
    assert!(dsa.census().count(LoopClass::Conditional) >= 1);
}

#[test]
fn autovec_reports_expected_verdicts() {
    let w = build(WorkloadId::BitCounts, Variant::AutoVec, Scale::Small);
    let vectorized: Vec<_> =
        w.kernel.reports.iter().filter(|r| r.vectorized).map(|r| r.name.clone()).collect();
    assert_eq!(vectorized, vec!["bitcnt_init"], "only the static init loop");

    let w = build(WorkloadId::MatMul, Variant::AutoVec, Scale::Small);
    assert!(w.kernel.reports.iter().all(|r| r.vectorized), "saxpy inner loop vectorizes");

    let w = build(WorkloadId::SusanEdges, Variant::AutoVec, Scale::Small);
    let by_name = |n: &str| w.kernel.reports.iter().find(|r| r.name == n).expect("report");
    assert!(!by_name("susan_threshold").vectorized);
    assert!(by_name("susan_smooth").vectorized);
}
