//! ARMv7-inspired scalar + NEON-style vector instruction set.
//!
//! This crate defines the instruction set architecture used by the whole
//! DSA reproduction stack: the register files, the instruction forms, a
//! compact 32-bit binary encoding with a full decoder, a disassembler and
//! an [`Asm`] assembler with label support.
//!
//! The ISA is deliberately a *reduced* ARMv7: it keeps exactly the
//! structural features the Dynamic SIMD Assembler's detection logic relies
//! on (post-indexed loads/stores acting as induction updates, `cmp` +
//! conditional branch loop closing, PC-relative branches for loop /
//! function / condition detection, and 128-bit Q registers with
//! type-dependent lane counts), while dropping the encodings irrelevant to
//! the paper.
//!
//! Instruction addresses are expressed in *instruction units* (one unit =
//! one 32-bit word); a program counter of `n` refers to the `n`-th
//! instruction of the program.
//!
//! # Examples
//!
//! ```
//! use dsa_isa::{Asm, Reg, Cond};
//!
//! // for (i = 0; i != 4; i++) r2 += i;
//! let mut a = Asm::new();
//! let (i, acc, limit) = (Reg::R0, Reg::R2, Reg::R1);
//! a.mov_imm(i, 0);
//! a.mov_imm(acc, 0);
//! a.mov_imm(limit, 4);
//! let top = a.here();
//! a.add(acc, acc, i);
//! a.add_imm(i, i, 1);
//! a.cmp(i, limit);
//! a.b_to(Cond::Ne, top);
//! a.halt();
//! let program = a.finish();
//! assert_eq!(program.len(), 8);
//! ```

mod asm;
mod encode;
mod instr;
mod program;
mod reg;

pub use asm::{Asm, Label};
pub use encode::{decode, encode, DecodeError};
pub use instr::{
    AddrMode, AluOp, Cond, ElemType, Instr, InstrClass, MemSize, Operand, VecOp,
};
pub use program::Program;
pub use reg::{QReg, Reg};
