//! Assembled programs.

use std::fmt;

use crate::encode::{decode, encode, DecodeError};
use crate::instr::Instr;

/// A fully assembled program: a flat sequence of instructions with entry
/// point 0.
///
/// Instruction addresses are instruction-unit indices; `program.fetch(pc)`
/// returns the instruction at that index.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Program {
    instrs: Vec<Instr>,
}

impl Program {
    /// Creates a program from a list of instructions.
    pub fn new(instrs: Vec<Instr>) -> Program {
        Program { instrs }
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the program contains no instructions.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Fetches the instruction at `pc`, or `None` past the end.
    #[inline]
    pub fn fetch(&self, pc: u32) -> Option<Instr> {
        self.instrs.get(pc as usize).copied()
    }

    /// Iterator over the instructions in program order.
    pub fn iter(&self) -> std::slice::Iter<'_, Instr> {
        self.instrs.iter()
    }

    /// The instructions as a slice (the simulator's hot loop fetches
    /// straight from this, skipping per-step method dispatch).
    #[inline]
    pub fn as_slice(&self) -> &[Instr] {
        &self.instrs
    }

    /// Serialises the program to its 32-bit machine words.
    pub fn to_words(&self) -> Vec<u32> {
        self.instrs.iter().map(|&i| encode(i)).collect()
    }

    /// Reconstructs a program from machine words.
    ///
    /// # Errors
    ///
    /// Returns the first [`DecodeError`] encountered.
    pub fn from_words(words: &[u32]) -> Result<Program, DecodeError> {
        let instrs = words.iter().map(|&w| decode(w)).collect::<Result<_, _>>()?;
        Ok(Program { instrs })
    }

    /// Number of vector (NEON) instructions in the program text.
    pub fn vector_instr_count(&self) -> usize {
        self.instrs.iter().filter(|i| i.is_vector()).count()
    }

    /// Stable FNV-1a digest over the instruction stream — the key under
    /// which predecoded forms of the program (e.g. `dsa-cpu`'s
    /// `DecodedProgram`) are cached and shared between runs. Hashes the
    /// `Debug` rendering of each instruction rather than [`encode`]:
    /// every representable `Instr` must hash, including malformed
    /// shapes (an over-wide vector shift, say) that `encode` rejects but
    /// the simulator handles as a runtime error.
    pub fn content_hash(&self) -> u64 {
        use fmt::Write as _;
        let mut text = String::new();
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for instr in &self.instrs {
            text.clear();
            let _ = write!(text, "{instr:?};");
            for b in text.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        h
    }
}

impl FromIterator<Instr> for Program {
    fn from_iter<T: IntoIterator<Item = Instr>>(iter: T) -> Program {
        Program { instrs: iter.into_iter().collect() }
    }
}

impl fmt::Display for Program {
    /// Disassembly listing, one instruction per line with its address.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (pc, instr) in self.instrs.iter().enumerate() {
            writeln!(f, "{pc:6}:  {instr}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{Cond, Instr};
    use crate::reg::Reg;

    #[test]
    fn fetch_and_bounds() {
        let p = Program::new(vec![Instr::Nop, Instr::Halt]);
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
        assert_eq!(p.fetch(0), Some(Instr::Nop));
        assert_eq!(p.fetch(1), Some(Instr::Halt));
        assert_eq!(p.fetch(2), None);
    }

    #[test]
    fn words_roundtrip() {
        let p = Program::new(vec![
            Instr::MovImm { rd: Reg::R1, imm: 42 },
            Instr::B { cond: Cond::Ne, offset: -1 },
            Instr::Halt,
        ]);
        let words = p.to_words();
        assert_eq!(Program::from_words(&words).unwrap(), p);
    }

    #[test]
    fn display_lists_addresses() {
        let p = Program::new(vec![Instr::Nop, Instr::Halt]);
        let text = p.to_string();
        assert!(text.contains("0:  nop"));
        assert!(text.contains("1:  halt"));
    }

    #[test]
    fn content_hash_tracks_encoding() {
        let p = Program::new(vec![Instr::MovImm { rd: Reg::R1, imm: 42 }, Instr::Halt]);
        let same = Program::from_words(&p.to_words()).unwrap();
        assert_eq!(p.content_hash(), same.content_hash());
        let different = Program::new(vec![Instr::MovImm { rd: Reg::R2, imm: 42 }, Instr::Halt]);
        assert_ne!(p.content_hash(), different.content_hash());
        assert_ne!(p.content_hash(), Program::default().content_hash());
    }

    #[test]
    fn content_hash_accepts_unencodable_instrs() {
        // An over-wide shift is representable (and fails at run time in
        // the simulator) but rejected by `encode` — hashing must not
        // panic on it.
        let bad = Program::new(vec![
            Instr::VshrImm {
                qd: crate::QReg::Q0,
                qn: crate::QReg::Q1,
                shift: 16,
                et: crate::ElemType::I16,
            },
            Instr::Halt,
        ]);
        assert_ne!(bad.content_hash(), Program::default().content_hash());
    }

    #[test]
    fn from_iterator() {
        let p: Program = [Instr::Nop, Instr::Halt].into_iter().collect();
        assert_eq!(p.len(), 2);
        assert_eq!(p.vector_instr_count(), 0);
    }
}
