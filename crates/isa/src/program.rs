//! Assembled programs.

use std::fmt;

use crate::encode::{decode, encode, DecodeError};
use crate::instr::Instr;

/// A fully assembled program: a flat sequence of instructions with entry
/// point 0.
///
/// Instruction addresses are instruction-unit indices; `program.fetch(pc)`
/// returns the instruction at that index.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Program {
    instrs: Vec<Instr>,
}

impl Program {
    /// Creates a program from a list of instructions.
    pub fn new(instrs: Vec<Instr>) -> Program {
        Program { instrs }
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the program contains no instructions.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Fetches the instruction at `pc`, or `None` past the end.
    #[inline]
    pub fn fetch(&self, pc: u32) -> Option<Instr> {
        self.instrs.get(pc as usize).copied()
    }

    /// Iterator over the instructions in program order.
    pub fn iter(&self) -> std::slice::Iter<'_, Instr> {
        self.instrs.iter()
    }

    /// The instructions as a slice (the simulator's hot loop fetches
    /// straight from this, skipping per-step method dispatch).
    #[inline]
    pub fn as_slice(&self) -> &[Instr] {
        &self.instrs
    }

    /// Serialises the program to its 32-bit machine words.
    pub fn to_words(&self) -> Vec<u32> {
        self.instrs.iter().map(|&i| encode(i)).collect()
    }

    /// Reconstructs a program from machine words.
    ///
    /// # Errors
    ///
    /// Returns the first [`DecodeError`] encountered.
    pub fn from_words(words: &[u32]) -> Result<Program, DecodeError> {
        let instrs = words.iter().map(|&w| decode(w)).collect::<Result<_, _>>()?;
        Ok(Program { instrs })
    }

    /// Number of vector (NEON) instructions in the program text.
    pub fn vector_instr_count(&self) -> usize {
        self.instrs.iter().filter(|i| i.is_vector()).count()
    }
}

impl FromIterator<Instr> for Program {
    fn from_iter<T: IntoIterator<Item = Instr>>(iter: T) -> Program {
        Program { instrs: iter.into_iter().collect() }
    }
}

impl fmt::Display for Program {
    /// Disassembly listing, one instruction per line with its address.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (pc, instr) in self.instrs.iter().enumerate() {
            writeln!(f, "{pc:6}:  {instr}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{Cond, Instr};
    use crate::reg::Reg;

    #[test]
    fn fetch_and_bounds() {
        let p = Program::new(vec![Instr::Nop, Instr::Halt]);
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
        assert_eq!(p.fetch(0), Some(Instr::Nop));
        assert_eq!(p.fetch(1), Some(Instr::Halt));
        assert_eq!(p.fetch(2), None);
    }

    #[test]
    fn words_roundtrip() {
        let p = Program::new(vec![
            Instr::MovImm { rd: Reg::R1, imm: 42 },
            Instr::B { cond: Cond::Ne, offset: -1 },
            Instr::Halt,
        ]);
        let words = p.to_words();
        assert_eq!(Program::from_words(&words).unwrap(), p);
    }

    #[test]
    fn display_lists_addresses() {
        let p = Program::new(vec![Instr::Nop, Instr::Halt]);
        let text = p.to_string();
        assert!(text.contains("0:  nop"));
        assert!(text.contains("1:  halt"));
    }

    #[test]
    fn from_iterator() {
        let p: Program = [Instr::Nop, Instr::Halt].into_iter().collect();
        assert_eq!(p.len(), 2);
        assert_eq!(p.vector_instr_count(), 0);
    }
}
