//! Instruction forms and their operand types.

use std::fmt;

use crate::reg::{QReg, Reg};

/// Branch condition codes (a subset of the ARM condition field).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cond {
    /// Equal (`Z == 1`).
    Eq,
    /// Not equal (`Z == 0`).
    Ne,
    /// Signed greater-or-equal (`N == V`).
    Ge,
    /// Signed less-than (`N != V`).
    Lt,
    /// Signed greater-than (`Z == 0 && N == V`).
    Gt,
    /// Signed less-or-equal (`Z == 1 || N != V`).
    Le,
    /// Always.
    Al,
}

impl Cond {
    pub(crate) const ALL: [Cond; 7] =
        [Cond::Eq, Cond::Ne, Cond::Ge, Cond::Lt, Cond::Gt, Cond::Le, Cond::Al];
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Cond::Eq => "eq",
            Cond::Ne => "ne",
            Cond::Ge => "ge",
            Cond::Lt => "lt",
            Cond::Gt => "gt",
            Cond::Le => "le",
            Cond::Al => "",
        };
        f.write_str(s)
    }
}

/// Scalar ALU operations.
///
/// The `F*` variants interpret the 32-bit register contents as IEEE-754
/// single-precision values (a simplification of the separate ARM VFP
/// register file, documented in `DESIGN.md`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    Add,
    Sub,
    /// Reverse subtract: `rd = src2 - rn`.
    Rsb,
    Mul,
    And,
    Orr,
    Eor,
    /// Logical shift left.
    Lsl,
    /// Logical shift right.
    Lsr,
    /// Arithmetic shift right.
    Asr,
    /// Single-precision float add.
    FAdd,
    /// Single-precision float subtract.
    FSub,
    /// Single-precision float multiply.
    FMul,
}

impl AluOp {
    pub(crate) const ALL: [AluOp; 13] = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::Rsb,
        AluOp::Mul,
        AluOp::And,
        AluOp::Orr,
        AluOp::Eor,
        AluOp::Lsl,
        AluOp::Lsr,
        AluOp::Asr,
        AluOp::FAdd,
        AluOp::FSub,
        AluOp::FMul,
    ];

    /// Whether this operation interprets its operands as floats.
    pub fn is_float(self) -> bool {
        matches!(self, AluOp::FAdd | AluOp::FSub | AluOp::FMul)
    }

    /// Whether this operation is a multiply (longer functional-unit latency).
    pub fn is_mul(self) -> bool {
        matches!(self, AluOp::Mul | AluOp::FMul)
    }
}

impl fmt::Display for AluOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::Rsb => "rsb",
            AluOp::Mul => "mul",
            AluOp::And => "and",
            AluOp::Orr => "orr",
            AluOp::Eor => "eor",
            AluOp::Lsl => "lsl",
            AluOp::Lsr => "lsr",
            AluOp::Asr => "asr",
            AluOp::FAdd => "fadd",
            AluOp::FSub => "fsub",
            AluOp::FMul => "fmul",
        };
        f.write_str(s)
    }
}

/// The second source operand of ALU and compare instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// A register operand.
    Reg(Reg),
    /// A signed 16-bit immediate.
    Imm(i16),
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(i) => write!(f, "#{i}"),
        }
    }
}

/// Width of a scalar memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemSize {
    /// Byte (8 bits, zero-extended on load).
    B,
    /// Half-word (16 bits, zero-extended on load).
    H,
    /// Word (32 bits).
    W,
}

impl MemSize {
    /// Access width in bytes.
    pub fn bytes(self) -> u32 {
        match self {
            MemSize::B => 1,
            MemSize::H => 2,
            MemSize::W => 4,
        }
    }
}

impl fmt::Display for MemSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MemSize::B => "b",
            MemSize::H => "h",
            MemSize::W => "",
        };
        f.write_str(s)
    }
}

/// Addressing mode of scalar loads and stores.
///
/// Post-indexed accesses (`ldr r3, [r5], #4`) are the canonical induction
/// pattern the DSA's Data Collection stage keys on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AddrMode {
    /// Access at `rn + imm`, no writeback.
    Offset(i16),
    /// Access at `rn`, then `rn += imm`.
    PostInc(i16),
    /// `rn += imm`, then access at `rn`.
    PreInc(i16),
}

impl AddrMode {
    /// The immediate carried by this addressing mode.
    pub fn imm(self) -> i16 {
        match self {
            AddrMode::Offset(i) | AddrMode::PostInc(i) | AddrMode::PreInc(i) => i,
        }
    }

    /// Whether the base register is written back.
    pub fn writeback(self) -> bool {
        !matches!(self, AddrMode::Offset(_))
    }
}

/// Element type of a 128-bit vector operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ElemType {
    /// Sixteen 8-bit integer lanes.
    I8,
    /// Eight 16-bit integer lanes.
    I16,
    /// Four 32-bit integer lanes.
    I32,
    /// Four single-precision float lanes.
    F32,
}

impl ElemType {
    pub(crate) const ALL: [ElemType; 4] =
        [ElemType::I8, ElemType::I16, ElemType::I32, ElemType::F32];

    /// Number of lanes in a 128-bit register.
    pub fn lanes(self) -> u32 {
        match self {
            ElemType::I8 => 16,
            ElemType::I16 => 8,
            ElemType::I32 | ElemType::F32 => 4,
        }
    }

    /// Width of one lane in bytes.
    pub fn lane_bytes(self) -> u32 {
        match self {
            ElemType::I8 => 1,
            ElemType::I16 => 2,
            ElemType::I32 | ElemType::F32 => 4,
        }
    }

    /// Whether lanes are interpreted as floats.
    pub fn is_float(self) -> bool {
        matches!(self, ElemType::F32)
    }

    /// The scalar access width matching one lane.
    pub fn mem_size(self) -> MemSize {
        match self {
            ElemType::I8 => MemSize::B,
            ElemType::I16 => MemSize::H,
            ElemType::I32 | ElemType::F32 => MemSize::W,
        }
    }
}

impl fmt::Display for ElemType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ElemType::I8 => "i8",
            ElemType::I16 => "i16",
            ElemType::I32 => "i32",
            ElemType::F32 => "f32",
        };
        f.write_str(s)
    }
}

/// Element-wise vector ALU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VecOp {
    Add,
    Sub,
    Mul,
    Min,
    Max,
    And,
    Orr,
    Eor,
}

impl VecOp {
    pub(crate) const ALL: [VecOp; 8] = [
        VecOp::Add,
        VecOp::Sub,
        VecOp::Mul,
        VecOp::Min,
        VecOp::Max,
        VecOp::And,
        VecOp::Orr,
        VecOp::Eor,
    ];

    /// Whether the operation is a multiply (longer latency).
    pub fn is_mul(self) -> bool {
        matches!(self, VecOp::Mul)
    }

    /// Whether applying the operation twice to the same inputs produces the
    /// same destination lanes (relevant for the Overlapping leftover
    /// strategy, which re-executes a few lanes).
    pub fn is_idempotent_rewrite(self) -> bool {
        // All element-wise ops are pure functions of their source lanes, so
        // recomputing a lane always yields the same value; the distinction
        // matters only for accumulating updates (handled at a higher level).
        true
    }
}

impl fmt::Display for VecOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            VecOp::Add => "vadd",
            VecOp::Sub => "vsub",
            VecOp::Mul => "vmul",
            VecOp::Min => "vmin",
            VecOp::Max => "vmax",
            VecOp::And => "vand",
            VecOp::Orr => "vorr",
            VecOp::Eor => "veor",
        };
        f.write_str(s)
    }
}

/// One machine instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instr {
    /// No operation.
    Nop,
    /// Stop the machine.
    Halt,
    /// `rd = imm` (sign-extended 16-bit immediate).
    MovImm { rd: Reg, imm: i16 },
    /// `rd = (imm << 16) | (rd & 0xffff)` — pairs with [`Instr::MovImm`] to
    /// materialise 32-bit constants, like ARM `movt`.
    MovTop { rd: Reg, imm: u16 },
    /// `rd = rm`.
    Mov { rd: Reg, rm: Reg },
    /// `rd = rn <op> src2`.
    Alu { op: AluOp, rd: Reg, rn: Reg, src2: Operand },
    /// Compare `rn` with `src2` and set the NZCV flags (signed).
    Cmp { rn: Reg, src2: Operand },
    /// PC-relative conditional branch; target is `pc + offset` in
    /// instruction units. A negative offset is a backward branch.
    B { cond: Cond, offset: i32 },
    /// Branch-and-link; `lr = pc + 1`, target is `pc + offset`.
    Bl { offset: i32 },
    /// Return: `pc = lr`.
    BxLr,
    /// Scalar load: `rd = mem[addr(rn, mode)]`, zero-extended.
    Ldr { rd: Reg, rn: Reg, mode: AddrMode, size: MemSize },
    /// Scalar store: `mem[addr(rn, mode)] = rs` (low `size` bytes).
    Str { rs: Reg, rn: Reg, mode: AddrMode, size: MemSize },
    /// Register-indexed load: `rd = mem[rn + (rm << lsl)]`.
    LdrReg { rd: Reg, rn: Reg, rm: Reg, lsl: u8, size: MemSize },
    /// Register-indexed store: `mem[rn + (rm << lsl)] = rs`.
    StrReg { rs: Reg, rn: Reg, rm: Reg, lsl: u8, size: MemSize },
    /// Vector load of 16 contiguous bytes: `qd = mem[rn..rn+16]`; if
    /// `writeback`, `rn += 16`.
    Vld1 { qd: QReg, rn: Reg, writeback: bool, et: ElemType },
    /// Vector store of 16 contiguous bytes; if `writeback`, `rn += 16`.
    Vst1 { qs: QReg, rn: Reg, writeback: bool, et: ElemType },
    /// Load a single lane; if `writeback`, `rn += lane_bytes`.
    Vld1Lane { qd: QReg, lane: u8, rn: Reg, writeback: bool, et: ElemType },
    /// Store a single lane; if `writeback`, `rn += lane_bytes`.
    Vst1Lane { qs: QReg, lane: u8, rn: Reg, writeback: bool, et: ElemType },
    /// Element-wise vector operation: `qd = qn <op> qm`.
    Vop { op: VecOp, et: ElemType, qd: QReg, qn: QReg, qm: QReg },
    /// Lane-wise logical shift right by an immediate (integer lanes only).
    VshrImm { qd: QReg, qn: QReg, shift: u8, et: ElemType },
    /// Splat a scalar register into every lane (NEON `vdup`).
    Vdup { qd: QReg, rm: Reg, et: ElemType },
    /// Splat an immediate into every lane.
    VdupImm { qd: QReg, imm: i16, et: ElemType },
    /// `qd = qm`.
    Vmov { qd: QReg, qm: QReg },
    /// Horizontal reduce-add of all lanes into a scalar register (like
    /// AArch64 `addv`; stands in for ARMv7 `vpadd` chains).
    Vaddv { rd: Reg, qn: QReg, et: ElemType },
    /// Move one lane to a scalar register.
    VmovToScalar { rd: Reg, qn: QReg, lane: u8, et: ElemType },
    /// Move a scalar register into one lane.
    VmovFromScalar { qd: QReg, lane: u8, rm: Reg, et: ElemType },
}

/// Coarse instruction class used by the timing and energy models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstrClass {
    Nop,
    Halt,
    IntAlu,
    IntMul,
    FpAlu,
    FpMul,
    Load,
    Store,
    Branch,
    Call,
    Return,
    VecLoad,
    VecStore,
    VecAlu,
    VecMul,
    VecMove,
}

impl InstrClass {
    /// Whether the class executes on the vector (NEON) engine.
    pub fn is_vector(self) -> bool {
        matches!(
            self,
            InstrClass::VecLoad
                | InstrClass::VecStore
                | InstrClass::VecAlu
                | InstrClass::VecMul
                | InstrClass::VecMove
        )
    }
}

impl Instr {
    /// The coarse class of this instruction.
    pub fn class(&self) -> InstrClass {
        match self {
            Instr::Nop => InstrClass::Nop,
            Instr::Halt => InstrClass::Halt,
            Instr::MovImm { .. } | Instr::MovTop { .. } | Instr::Mov { .. } => InstrClass::IntAlu,
            Instr::Alu { op, .. } => match (op.is_float(), op.is_mul()) {
                (false, false) => InstrClass::IntAlu,
                (false, true) => InstrClass::IntMul,
                (true, false) => InstrClass::FpAlu,
                (true, true) => InstrClass::FpMul,
            },
            Instr::Cmp { .. } => InstrClass::IntAlu,
            Instr::B { .. } => InstrClass::Branch,
            Instr::Bl { .. } => InstrClass::Call,
            Instr::BxLr => InstrClass::Return,
            Instr::Ldr { .. } | Instr::LdrReg { .. } => InstrClass::Load,
            Instr::Str { .. } | Instr::StrReg { .. } => InstrClass::Store,
            Instr::Vld1 { .. } | Instr::Vld1Lane { .. } => InstrClass::VecLoad,
            Instr::Vst1 { .. } | Instr::Vst1Lane { .. } => InstrClass::VecStore,
            Instr::Vop { op, .. } => {
                if op.is_mul() {
                    InstrClass::VecMul
                } else {
                    InstrClass::VecAlu
                }
            }
            Instr::VshrImm { .. } => InstrClass::VecAlu,
            Instr::VdupImm { .. }
            | Instr::Vdup { .. }
            | Instr::Vmov { .. }
            | Instr::Vaddv { .. }
            | Instr::VmovToScalar { .. }
            | Instr::VmovFromScalar { .. } => InstrClass::VecMove,
        }
    }

    /// Whether this instruction executes on the vector engine.
    pub fn is_vector(&self) -> bool {
        self.class().is_vector()
    }

    /// Whether this instruction may redirect control flow.
    pub fn is_control(&self) -> bool {
        matches!(self, Instr::B { .. } | Instr::Bl { .. } | Instr::BxLr)
    }

    /// Whether this instruction reads or writes data memory (and so must
    /// consult the cache model when its timing is charged). Instruction
    /// fetch is not counted — every instruction fetches.
    pub fn touches_memory(&self) -> bool {
        matches!(
            self,
            Instr::Ldr { .. }
                | Instr::Str { .. }
                | Instr::LdrReg { .. }
                | Instr::StrReg { .. }
                | Instr::Vld1 { .. }
                | Instr::Vst1 { .. }
                | Instr::Vld1Lane { .. }
                | Instr::Vst1Lane { .. }
        )
    }

    /// For PC-relative branches, the target given the instruction's own PC.
    pub fn branch_target(&self, pc: u32) -> Option<u32> {
        match self {
            Instr::B { offset, .. } | Instr::Bl { offset } => {
                Some((pc as i64 + *offset as i64) as u32)
            }
            _ => None,
        }
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn mode(f: &mut fmt::Formatter<'_>, rn: &Reg, m: &AddrMode) -> fmt::Result {
            match m {
                AddrMode::Offset(0) => write!(f, "[{rn}]"),
                AddrMode::Offset(i) => write!(f, "[{rn}, #{i}]"),
                AddrMode::PostInc(i) => write!(f, "[{rn}], #{i}"),
                AddrMode::PreInc(i) => write!(f, "[{rn}, #{i}]!"),
            }
        }
        match self {
            Instr::Nop => write!(f, "nop"),
            Instr::Halt => write!(f, "halt"),
            Instr::MovImm { rd, imm } => write!(f, "mov {rd}, #{imm}"),
            Instr::MovTop { rd, imm } => write!(f, "movt {rd}, #{imm}"),
            Instr::Mov { rd, rm } => write!(f, "mov {rd}, {rm}"),
            Instr::Alu { op, rd, rn, src2 } => write!(f, "{op} {rd}, {rn}, {src2}"),
            Instr::Cmp { rn, src2 } => write!(f, "cmp {rn}, {src2}"),
            Instr::B { cond, offset } => write!(f, "b{cond} {offset:+}"),
            Instr::Bl { offset } => write!(f, "bl {offset:+}"),
            Instr::BxLr => write!(f, "bx lr"),
            Instr::Ldr { rd, rn, mode: m, size } => {
                write!(f, "ldr{size} {rd}, ")?;
                mode(f, rn, m)
            }
            Instr::Str { rs, rn, mode: m, size } => {
                write!(f, "str{size} {rs}, ")?;
                mode(f, rn, m)
            }
            Instr::LdrReg { rd, rn, rm, lsl, size } => {
                write!(f, "ldr{size} {rd}, [{rn}, {rm}, lsl #{lsl}]")
            }
            Instr::StrReg { rs, rn, rm, lsl, size } => {
                write!(f, "str{size} {rs}, [{rn}, {rm}, lsl #{lsl}]")
            }
            Instr::Vld1 { qd, rn, writeback, et } => {
                write!(f, "vld1.{et} {qd}, [{rn}]{}", if *writeback { "!" } else { "" })
            }
            Instr::Vst1 { qs, rn, writeback, et } => {
                write!(f, "vst1.{et} {qs}, [{rn}]{}", if *writeback { "!" } else { "" })
            }
            Instr::Vld1Lane { qd, lane, rn, writeback, et } => write!(
                f,
                "vld1.{et} {qd}[{lane}], [{rn}]{}",
                if *writeback { "!" } else { "" }
            ),
            Instr::Vst1Lane { qs, lane, rn, writeback, et } => write!(
                f,
                "vst1.{et} {qs}[{lane}], [{rn}]{}",
                if *writeback { "!" } else { "" }
            ),
            Instr::Vop { op, et, qd, qn, qm } => write!(f, "{op}.{et} {qd}, {qn}, {qm}"),
            Instr::VshrImm { qd, qn, shift, et } => write!(f, "vshr.{et} {qd}, {qn}, #{shift}"),
            Instr::Vdup { qd, rm, et } => write!(f, "vdup.{et} {qd}, {rm}"),
            Instr::VdupImm { qd, imm, et } => write!(f, "vdup.{et} {qd}, #{imm}"),
            Instr::Vmov { qd, qm } => write!(f, "vmov {qd}, {qm}"),
            Instr::Vaddv { rd, qn, et } => write!(f, "vaddv.{et} {rd}, {qn}"),
            Instr::VmovToScalar { rd, qn, lane, et } => {
                write!(f, "vmov.{et} {rd}, {qn}[{lane}]")
            }
            Instr::VmovFromScalar { qd, lane, rm, et } => {
                write!(f, "vmov.{et} {qd}[{lane}], {rm}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lanes_and_bytes() {
        assert_eq!(ElemType::I8.lanes(), 16);
        assert_eq!(ElemType::I16.lanes(), 8);
        assert_eq!(ElemType::I32.lanes(), 4);
        assert_eq!(ElemType::F32.lanes(), 4);
        for et in ElemType::ALL {
            assert_eq!(et.lanes() * et.lane_bytes(), 16);
        }
    }

    #[test]
    fn classes() {
        assert_eq!(Instr::Nop.class(), InstrClass::Nop);
        let mul = Instr::Alu {
            op: AluOp::Mul,
            rd: Reg::R0,
            rn: Reg::R1,
            src2: Operand::Reg(Reg::R2),
        };
        assert_eq!(mul.class(), InstrClass::IntMul);
        let fmul = Instr::Alu {
            op: AluOp::FMul,
            rd: Reg::R0,
            rn: Reg::R1,
            src2: Operand::Reg(Reg::R2),
        };
        assert_eq!(fmul.class(), InstrClass::FpMul);
        let v = Instr::Vop {
            op: VecOp::Mul,
            et: ElemType::I32,
            qd: QReg::Q0,
            qn: QReg::Q1,
            qm: QReg::Q2,
        };
        assert_eq!(v.class(), InstrClass::VecMul);
        assert!(v.is_vector());
        assert!(!mul.is_vector());
    }

    #[test]
    fn branch_targets() {
        let b = Instr::B { cond: Cond::Ne, offset: -3 };
        assert_eq!(b.branch_target(10), Some(7));
        assert_eq!(Instr::Nop.branch_target(10), None);
        assert!(b.is_control());
        assert!(Instr::BxLr.is_control());
    }

    #[test]
    fn display_forms() {
        let i = Instr::Ldr {
            rd: Reg::R3,
            rn: Reg::R5,
            mode: AddrMode::PostInc(4),
            size: MemSize::W,
        };
        assert_eq!(i.to_string(), "ldr r3, [r5], #4");
        let i = Instr::Vop {
            op: VecOp::Add,
            et: ElemType::F32,
            qd: QReg::Q9,
            qn: QReg::Q9,
            qm: QReg::Q8,
        };
        assert_eq!(i.to_string(), "vadd.f32 q9, q9, q8");
        let i = Instr::B { cond: Cond::Al, offset: 5 };
        assert_eq!(i.to_string(), "b +5");
    }

    #[test]
    fn display_extension_instructions() {
        let i = Instr::VshrImm { qd: QReg::Q1, qn: QReg::Q2, shift: 8, et: ElemType::I16 };
        assert_eq!(i.to_string(), "vshr.i16 q1, q2, #8");
        let i = Instr::Vdup { qd: QReg::Q3, rm: Reg::R7, et: ElemType::I8 };
        assert_eq!(i.to_string(), "vdup.i8 q3, r7");
        let i = Instr::Vaddv { rd: Reg::R2, qn: QReg::Q15, et: ElemType::I32 };
        assert_eq!(i.to_string(), "vaddv.i32 r2, q15");
    }

    #[test]
    fn addr_mode_accessors() {
        assert_eq!(AddrMode::PostInc(4).imm(), 4);
        assert!(AddrMode::PostInc(4).writeback());
        assert!(AddrMode::PreInc(-8).writeback());
        assert!(!AddrMode::Offset(12).writeback());
    }
}
