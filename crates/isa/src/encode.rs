//! Binary encoding of instructions into 32-bit words and back.
//!
//! The encoding is a clean-slate layout (not the real ARM encoding): the
//! top four bits select an instruction class, the rest are fixed fields.
//! Every encodable instruction round-trips exactly through
//! [`encode`]/[`decode`]; this is verified by exhaustive and property
//! tests.

use std::fmt;

use crate::instr::{AddrMode, AluOp, Cond, ElemType, Instr, MemSize, Operand, VecOp};
use crate::reg::{QReg, Reg};

/// Error returned by [`decode`] for words that do not correspond to any
/// instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError {
    /// The offending word.
    pub word: u32,
    /// Human-readable reason.
    pub reason: &'static str,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot decode word {:#010x}: {}", self.word, self.reason)
    }
}

impl std::error::Error for DecodeError {}

const CLASS_MISC: u32 = 0;
const CLASS_MOV_IMM: u32 = 1;
const CLASS_MOV_TOP: u32 = 2;
const CLASS_MOV: u32 = 3;
const CLASS_ALU_REG: u32 = 4;
const CLASS_ALU_IMM: u32 = 5;
const CLASS_CMP_REG: u32 = 6;
const CLASS_CMP_IMM: u32 = 7;
const CLASS_B: u32 = 8;
const CLASS_BL: u32 = 9;
const CLASS_LDR: u32 = 10;
const CLASS_STR: u32 = 11;
const CLASS_LDR_REG: u32 = 12;
const CLASS_STR_REG: u32 = 13;
const CLASS_VMEM: u32 = 14;
const CLASS_VALU: u32 = 15;

fn cond_code(c: Cond) -> u32 {
    Cond::ALL.iter().position(|&x| x == c).expect("cond in table") as u32
}

fn alu_code(op: AluOp) -> u32 {
    AluOp::ALL.iter().position(|&x| x == op).expect("alu op in table") as u32
}

fn vec_code(op: VecOp) -> u32 {
    VecOp::ALL.iter().position(|&x| x == op).expect("vec op in table") as u32
}

fn et_code(et: ElemType) -> u32 {
    ElemType::ALL.iter().position(|&x| x == et).expect("elem type in table") as u32
}

fn size_code(s: MemSize) -> u32 {
    match s {
        MemSize::B => 0,
        MemSize::H => 1,
        MemSize::W => 2,
    }
}

fn mode_code(m: AddrMode) -> (u32, i16) {
    match m {
        AddrMode::Offset(i) => (0, i),
        AddrMode::PostInc(i) => (1, i),
        AddrMode::PreInc(i) => (2, i),
    }
}

fn class_of(word: u32) -> u32 {
    word >> 28
}

fn field(word: u32, hi: u32, lo: u32) -> u32 {
    (word >> lo) & ((1 << (hi - lo + 1)) - 1)
}

/// Maximum forward/backward reach of PC-relative branches, in
/// instruction units (24-bit signed offset field).
pub(crate) const BRANCH_RANGE: i32 = 1 << 23;

/// Encodes one instruction into its 32-bit word.
///
/// # Panics
///
/// Panics if a field is out of its encodable range: a branch offset
/// outside `±2^23` instructions, a lane index not valid for the element
/// type, or a shift amount above 7. The [`crate::Asm`] builder validates
/// these before emitting.
pub fn encode(instr: Instr) -> u32 {
    let c = |class: u32| class << 28;
    match instr {
        Instr::Nop => c(CLASS_MISC),
        Instr::Halt => c(CLASS_MISC) | 1 << 24,
        Instr::BxLr => c(CLASS_MISC) | 2 << 24,
        Instr::MovImm { rd, imm } => {
            c(CLASS_MOV_IMM) | (rd.index() as u32) << 24 | (imm as u16 as u32)
        }
        Instr::MovTop { rd, imm } => {
            c(CLASS_MOV_TOP) | (rd.index() as u32) << 24 | imm as u32
        }
        Instr::Mov { rd, rm } => {
            c(CLASS_MOV) | (rd.index() as u32) << 24 | (rm.index() as u32) << 20
        }
        Instr::Alu { op, rd, rn, src2 } => match src2 {
            Operand::Reg(rm) => {
                c(CLASS_ALU_REG)
                    | alu_code(op) << 24
                    | (rd.index() as u32) << 20
                    | (rn.index() as u32) << 16
                    | (rm.index() as u32) << 12
            }
            Operand::Imm(imm) => {
                c(CLASS_ALU_IMM)
                    | alu_code(op) << 24
                    | (rd.index() as u32) << 20
                    | (rn.index() as u32) << 16
                    | (imm as u16 as u32)
            }
        },
        Instr::Cmp { rn, src2 } => match src2 {
            Operand::Reg(rm) => {
                c(CLASS_CMP_REG) | (rn.index() as u32) << 24 | (rm.index() as u32) << 20
            }
            Operand::Imm(imm) => {
                c(CLASS_CMP_IMM) | (rn.index() as u32) << 24 | (imm as u16 as u32)
            }
        },
        Instr::B { cond, offset } => {
            assert!(
                (-BRANCH_RANGE..BRANCH_RANGE).contains(&offset),
                "branch offset {offset} out of 24-bit range"
            );
            c(CLASS_B) | cond_code(cond) << 24 | (offset as u32 & 0x00ff_ffff)
        }
        Instr::Bl { offset } => {
            assert!(
                (-BRANCH_RANGE..BRANCH_RANGE).contains(&offset),
                "call offset {offset} out of 24-bit range"
            );
            c(CLASS_BL) | (offset as u32 & 0x00ff_ffff)
        }
        Instr::Ldr { rd, rn, mode, size } => {
            let (kind, imm) = mode_code(mode);
            c(CLASS_LDR)
                | (rd.index() as u32) << 24
                | (rn.index() as u32) << 20
                | kind << 18
                | size_code(size) << 16
                | (imm as u16 as u32)
        }
        Instr::Str { rs, rn, mode, size } => {
            let (kind, imm) = mode_code(mode);
            c(CLASS_STR)
                | (rs.index() as u32) << 24
                | (rn.index() as u32) << 20
                | kind << 18
                | size_code(size) << 16
                | (imm as u16 as u32)
        }
        Instr::LdrReg { rd, rn, rm, lsl, size } => {
            assert!(lsl <= 7, "register-indexed shift {lsl} out of range");
            c(CLASS_LDR_REG)
                | (rd.index() as u32) << 24
                | (rn.index() as u32) << 20
                | (rm.index() as u32) << 16
                | (lsl as u32) << 13
                | size_code(size) << 11
        }
        Instr::StrReg { rs, rn, rm, lsl, size } => {
            assert!(lsl <= 7, "register-indexed shift {lsl} out of range");
            c(CLASS_STR_REG)
                | (rs.index() as u32) << 24
                | (rn.index() as u32) << 20
                | (rm.index() as u32) << 16
                | (lsl as u32) << 13
                | size_code(size) << 11
        }
        Instr::Vld1 { qd, rn, writeback, et } => {
            vmem(0, qd.index(), rn, writeback, et, 0)
        }
        Instr::Vst1 { qs, rn, writeback, et } => {
            vmem(1, qs.index(), rn, writeback, et, 0)
        }
        Instr::Vld1Lane { qd, lane, rn, writeback, et } => {
            assert!((lane as u32) < et.lanes(), "lane {lane} invalid for {et}");
            vmem(2, qd.index(), rn, writeback, et, lane)
        }
        Instr::Vst1Lane { qs, lane, rn, writeback, et } => {
            assert!((lane as u32) < et.lanes(), "lane {lane} invalid for {et}");
            vmem(3, qs.index(), rn, writeback, et, lane)
        }
        Instr::Vop { op, et, qd, qn, qm } => {
            c(CLASS_VALU)
                | vec_code(op) << 21
                | et_code(et) << 19
                | (qd.index() as u32) << 15
                | (qn.index() as u32) << 11
                | (qm.index() as u32) << 7
        }
        Instr::VshrImm { qd, qn, shift, et } => {
            assert!(!et.is_float(), "vector shift is integer-only");
            assert!((shift as u32) < et.lane_bytes() * 8, "shift {shift} exceeds lane width");
            c(CLASS_VALU)
                | 6 << 25
                | (qd.index() as u32) << 21
                | (qn.index() as u32) << 17
                | et_code(et) << 15
                | (shift as u32) << 10
        }
        Instr::Vdup { qd, rm, et } => {
            c(CLASS_VALU)
                | 7 << 25
                | (qd.index() as u32) << 21
                | (rm.index() as u32) << 17
                | et_code(et) << 15
        }
        Instr::VdupImm { qd, imm, et } => {
            c(CLASS_VALU)
                | 1 << 25
                | (qd.index() as u32) << 21
                | et_code(et) << 19
                | (imm as u16 as u32)
        }
        Instr::Vmov { qd, qm } => {
            c(CLASS_VALU) | 2 << 25 | (qd.index() as u32) << 21 | (qm.index() as u32) << 17
        }
        Instr::Vaddv { rd, qn, et } => {
            c(CLASS_VALU)
                | 3 << 25
                | (rd.index() as u32) << 21
                | (qn.index() as u32) << 17
                | et_code(et) << 15
        }
        Instr::VmovToScalar { rd, qn, lane, et } => {
            assert!((lane as u32) < et.lanes(), "lane {lane} invalid for {et}");
            c(CLASS_VALU)
                | 4 << 25
                | (rd.index() as u32) << 21
                | (qn.index() as u32) << 17
                | (lane as u32) << 12
                | et_code(et) << 10
        }
        Instr::VmovFromScalar { qd, lane, rm, et } => {
            assert!((lane as u32) < et.lanes(), "lane {lane} invalid for {et}");
            c(CLASS_VALU)
                | 5 << 25
                | (qd.index() as u32) << 21
                | (rm.index() as u32) << 17
                | (lane as u32) << 12
                | et_code(et) << 10
        }
    }
}

fn vmem(sub: u32, q: u8, rn: Reg, writeback: bool, et: ElemType, lane: u8) -> u32 {
    (CLASS_VMEM << 28)
        | sub << 26
        | (q as u32) << 22
        | (rn.index() as u32) << 18
        | (writeback as u32) << 17
        | et_code(et) << 15
        | (lane as u32) << 10
}

fn sign_extend_24(v: u32) -> i32 {
    ((v << 8) as i32) >> 8
}

/// Decodes one 32-bit word back into an [`Instr`].
///
/// # Errors
///
/// Returns a [`DecodeError`] if the word's class/subcode/field values do
/// not correspond to any encodable instruction.
pub fn decode(word: u32) -> Result<Instr, DecodeError> {
    let err = |reason| Err(DecodeError { word, reason });
    let reg = |hi, lo| Reg::new(field(word, hi, lo) as u8);
    let qreg = |hi, lo| QReg::new(field(word, hi, lo) as u8);
    let alu_op = |hi, lo| {
        AluOp::ALL
            .get(field(word, hi, lo) as usize)
            .copied()
            .ok_or(DecodeError { word, reason: "invalid alu opcode" })
    };
    let mem_size = |hi, lo| match field(word, hi, lo) {
        0 => Ok(MemSize::B),
        1 => Ok(MemSize::H),
        2 => Ok(MemSize::W),
        _ => Err(DecodeError { word, reason: "invalid memory size" }),
    };
    let elem = |hi, lo| ElemType::ALL[field(word, hi, lo) as usize];
    let addr_mode = |kind_hi, kind_lo| {
        let imm = field(word, 15, 0) as u16 as i16;
        match field(word, kind_hi, kind_lo) {
            0 => Ok(AddrMode::Offset(imm)),
            1 => Ok(AddrMode::PostInc(imm)),
            2 => Ok(AddrMode::PreInc(imm)),
            _ => Err(DecodeError { word, reason: "invalid addressing mode" }),
        }
    };

    match class_of(word) {
        CLASS_MISC => match field(word, 27, 24) {
            0 => Ok(Instr::Nop),
            1 => Ok(Instr::Halt),
            2 => Ok(Instr::BxLr),
            _ => err("invalid misc subcode"),
        },
        CLASS_MOV_IMM => Ok(Instr::MovImm {
            rd: reg(27, 24),
            imm: field(word, 15, 0) as u16 as i16,
        }),
        CLASS_MOV_TOP => Ok(Instr::MovTop {
            rd: reg(27, 24),
            imm: field(word, 15, 0) as u16,
        }),
        CLASS_MOV => Ok(Instr::Mov { rd: reg(27, 24), rm: reg(23, 20) }),
        CLASS_ALU_REG => Ok(Instr::Alu {
            op: alu_op(27, 24)?,
            rd: reg(23, 20),
            rn: reg(19, 16),
            src2: Operand::Reg(reg(15, 12)),
        }),
        CLASS_ALU_IMM => Ok(Instr::Alu {
            op: alu_op(27, 24)?,
            rd: reg(23, 20),
            rn: reg(19, 16),
            src2: Operand::Imm(field(word, 15, 0) as u16 as i16),
        }),
        CLASS_CMP_REG => Ok(Instr::Cmp {
            rn: reg(27, 24),
            src2: Operand::Reg(reg(23, 20)),
        }),
        CLASS_CMP_IMM => Ok(Instr::Cmp {
            rn: reg(27, 24),
            src2: Operand::Imm(field(word, 15, 0) as u16 as i16),
        }),
        CLASS_B => {
            let cond = Cond::ALL
                .get(field(word, 27, 24) as usize)
                .copied()
                .ok_or(DecodeError { word, reason: "invalid condition code" })?;
            Ok(Instr::B { cond, offset: sign_extend_24(field(word, 23, 0)) })
        }
        CLASS_BL => Ok(Instr::Bl { offset: sign_extend_24(field(word, 23, 0)) }),
        CLASS_LDR => Ok(Instr::Ldr {
            rd: reg(27, 24),
            rn: reg(23, 20),
            mode: addr_mode(19, 18)?,
            size: mem_size(17, 16)?,
        }),
        CLASS_STR => Ok(Instr::Str {
            rs: reg(27, 24),
            rn: reg(23, 20),
            mode: addr_mode(19, 18)?,
            size: mem_size(17, 16)?,
        }),
        CLASS_LDR_REG => Ok(Instr::LdrReg {
            rd: reg(27, 24),
            rn: reg(23, 20),
            rm: reg(19, 16),
            lsl: field(word, 15, 13) as u8,
            size: mem_size(12, 11)?,
        }),
        CLASS_STR_REG => Ok(Instr::StrReg {
            rs: reg(27, 24),
            rn: reg(23, 20),
            rm: reg(19, 16),
            lsl: field(word, 15, 13) as u8,
            size: mem_size(12, 11)?,
        }),
        CLASS_VMEM => {
            let q = qreg(25, 22);
            let rn = reg(21, 18);
            let writeback = field(word, 17, 17) == 1;
            let et = elem(16, 15);
            let lane = field(word, 14, 10) as u8;
            match field(word, 27, 26) {
                0 => Ok(Instr::Vld1 { qd: q, rn, writeback, et }),
                1 => Ok(Instr::Vst1 { qs: q, rn, writeback, et }),
                2 if (lane as u32) < et.lanes() => {
                    Ok(Instr::Vld1Lane { qd: q, lane, rn, writeback, et })
                }
                3 if (lane as u32) < et.lanes() => {
                    Ok(Instr::Vst1Lane { qs: q, lane, rn, writeback, et })
                }
                _ => err("invalid vector-memory lane"),
            }
        }
        CLASS_VALU => match field(word, 27, 25) {
            0 => {
                let op = VecOp::ALL
                    .get(field(word, 24, 21) as usize)
                    .copied()
                    .ok_or(DecodeError { word, reason: "invalid vector opcode" })?;
                Ok(Instr::Vop {
                    op,
                    et: elem(20, 19),
                    qd: qreg(18, 15),
                    qn: qreg(14, 11),
                    qm: qreg(10, 7),
                })
            }
            1 => Ok(Instr::VdupImm {
                qd: qreg(24, 21),
                et: elem(20, 19),
                imm: field(word, 15, 0) as u16 as i16,
            }),
            2 => Ok(Instr::Vmov { qd: qreg(24, 21), qm: qreg(20, 17) }),
            3 => Ok(Instr::Vaddv {
                rd: reg(24, 21),
                qn: qreg(20, 17),
                et: elem(16, 15),
            }),
            4 => {
                let et = elem(11, 10);
                let lane = field(word, 16, 12) as u8;
                if (lane as u32) >= et.lanes() {
                    return err("invalid lane for element type");
                }
                Ok(Instr::VmovToScalar { rd: reg(24, 21), qn: qreg(20, 17), lane, et })
            }
            5 => {
                let et = elem(11, 10);
                let lane = field(word, 16, 12) as u8;
                if (lane as u32) >= et.lanes() {
                    return err("invalid lane for element type");
                }
                Ok(Instr::VmovFromScalar { qd: qreg(24, 21), lane, rm: reg(20, 17), et })
            }
            6 => {
                let et = elem(16, 15);
                let shift = field(word, 14, 10) as u8;
                if et.is_float() || (shift as u32) >= et.lane_bytes() * 8 {
                    return err("invalid vector shift");
                }
                Ok(Instr::VshrImm { qd: qreg(24, 21), qn: qreg(20, 17), shift, et })
            }
            7 => Ok(Instr::Vdup { qd: qreg(24, 21), rm: reg(20, 17), et: elem(16, 15) }),
            _ => err("invalid vector-alu subcode"),
        },
        _ => unreachable!("class field is 4 bits"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(i: Instr) {
        let w = encode(i);
        let back = decode(w).unwrap_or_else(|e| panic!("{e} for {i}"));
        assert_eq!(i, back, "word {w:#010x}");
    }

    #[test]
    fn roundtrip_misc() {
        roundtrip(Instr::Nop);
        roundtrip(Instr::Halt);
        roundtrip(Instr::BxLr);
    }

    #[test]
    fn roundtrip_moves_and_alu() {
        roundtrip(Instr::MovImm { rd: Reg::R7, imm: -1234 });
        roundtrip(Instr::MovTop { rd: Reg::R0, imm: 0xBEEF });
        roundtrip(Instr::Mov { rd: Reg::SP, rm: Reg::LR });
        for op in AluOp::ALL {
            roundtrip(Instr::Alu { op, rd: Reg::R1, rn: Reg::R2, src2: Operand::Reg(Reg::R3) });
            roundtrip(Instr::Alu { op, rd: Reg::R1, rn: Reg::R2, src2: Operand::Imm(-7) });
        }
        roundtrip(Instr::Cmp { rn: Reg::R4, src2: Operand::Reg(Reg::R5) });
        roundtrip(Instr::Cmp { rn: Reg::R4, src2: Operand::Imm(400) });
    }

    #[test]
    fn roundtrip_branches() {
        for cond in Cond::ALL {
            roundtrip(Instr::B { cond, offset: -100 });
            roundtrip(Instr::B { cond, offset: 100 });
        }
        roundtrip(Instr::B { cond: Cond::Al, offset: BRANCH_RANGE - 1 });
        roundtrip(Instr::B { cond: Cond::Al, offset: -BRANCH_RANGE });
        roundtrip(Instr::Bl { offset: 42 });
        roundtrip(Instr::Bl { offset: -42 });
    }

    #[test]
    #[should_panic]
    fn branch_offset_overflow_panics() {
        let _ = encode(Instr::B { cond: Cond::Al, offset: BRANCH_RANGE });
    }

    #[test]
    fn roundtrip_memory() {
        for size in [MemSize::B, MemSize::H, MemSize::W] {
            for mode in [AddrMode::Offset(-4), AddrMode::PostInc(4), AddrMode::PreInc(8)] {
                roundtrip(Instr::Ldr { rd: Reg::R3, rn: Reg::R5, mode, size });
                roundtrip(Instr::Str { rs: Reg::R3, rn: Reg::R5, mode, size });
            }
            roundtrip(Instr::LdrReg { rd: Reg::R0, rn: Reg::R1, rm: Reg::R2, lsl: 2, size });
            roundtrip(Instr::StrReg { rs: Reg::R0, rn: Reg::R1, rm: Reg::R2, lsl: 7, size });
        }
    }

    #[test]
    fn roundtrip_vector() {
        for et in ElemType::ALL {
            roundtrip(Instr::Vld1 { qd: QReg::Q8, rn: Reg::R5, writeback: true, et });
            roundtrip(Instr::Vst1 { qs: QReg::Q9, rn: Reg::R2, writeback: false, et });
            let lane = (et.lanes() - 1) as u8;
            roundtrip(Instr::Vld1Lane { qd: QReg::Q1, lane, rn: Reg::R0, writeback: true, et });
            roundtrip(Instr::Vst1Lane { qs: QReg::Q1, lane, rn: Reg::R0, writeback: false, et });
            for op in VecOp::ALL {
                roundtrip(Instr::Vop { op, et, qd: QReg::Q0, qn: QReg::Q15, qm: QReg::Q7 });
            }
            roundtrip(Instr::VdupImm { qd: QReg::Q3, imm: -9, et });
            roundtrip(Instr::Vdup { qd: QReg::Q3, rm: Reg::R9, et });
            if !et.is_float() {
                let max_shift = (et.lane_bytes() * 8 - 1) as u8;
                roundtrip(Instr::VshrImm { qd: QReg::Q5, qn: QReg::Q6, shift: max_shift, et });
                roundtrip(Instr::VshrImm { qd: QReg::Q5, qn: QReg::Q6, shift: 0, et });
            }
            roundtrip(Instr::Vaddv { rd: Reg::R12, qn: QReg::Q4, et });
            roundtrip(Instr::VmovToScalar { rd: Reg::R1, qn: QReg::Q2, lane, et });
            roundtrip(Instr::VmovFromScalar { qd: QReg::Q2, lane, rm: Reg::R1, et });
        }
        roundtrip(Instr::Vmov { qd: QReg::Q10, qm: QReg::Q11 });
    }

    #[test]
    fn invalid_words_error() {
        // misc subcode 9
        assert!(decode(9 << 24).is_err());
        // alu-reg with opcode 15 (only 13 ops)
        assert!(decode((4 << 28) | (15 << 24)).is_err());
        // branch with condition code 9
        assert!(decode((8 << 28) | (9 << 24)).is_err());
        // load with size code 3
        assert!(decode((10 << 28) | (3 << 16)).is_err());
        // lane 20 for i32 (4 lanes)
        let bad = (14 << 28) | (2 << 26) | (2 << 15) | (20 << 10);
        assert!(decode(bad).is_err());
    }

    #[test]
    #[should_panic]
    fn encode_invalid_lane_panics() {
        let _ = encode(Instr::Vld1Lane {
            qd: QReg::Q0,
            lane: 4,
            rn: Reg::R0,
            writeback: false,
            et: ElemType::I32,
        });
    }
}
