//! Scalar and vector register names.

use std::fmt;

/// A scalar (general-purpose) register, `r0`–`r15`.
///
/// `r13` is the stack pointer, `r14` the link register and `r15` the
/// program counter, mirroring the ARM convention. The program counter is
/// never encoded as an operand of ALU/memory instructions in this reduced
/// ISA; it is only updated by branches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl Reg {
    pub const R0: Reg = Reg(0);
    pub const R1: Reg = Reg(1);
    pub const R2: Reg = Reg(2);
    pub const R3: Reg = Reg(3);
    pub const R4: Reg = Reg(4);
    pub const R5: Reg = Reg(5);
    pub const R6: Reg = Reg(6);
    pub const R7: Reg = Reg(7);
    pub const R8: Reg = Reg(8);
    pub const R9: Reg = Reg(9);
    pub const R10: Reg = Reg(10);
    pub const R11: Reg = Reg(11);
    pub const R12: Reg = Reg(12);
    /// Stack pointer (`r13`).
    pub const SP: Reg = Reg(13);
    /// Link register (`r14`).
    pub const LR: Reg = Reg(14);
    /// Program counter (`r15`).
    pub const PC: Reg = Reg(15);

    /// Creates a register from its index.
    ///
    /// # Panics
    ///
    /// Panics if `index > 15`.
    pub fn new(index: u8) -> Reg {
        assert!(index <= 15, "scalar register index out of range: {index}");
        Reg(index)
    }

    /// The register's index, `0..=15`.
    pub fn index(self) -> u8 {
        self.0
    }

    /// Iterator over all sixteen scalar registers.
    pub fn all() -> impl Iterator<Item = Reg> {
        (0..16).map(Reg)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            13 => write!(f, "sp"),
            14 => write!(f, "lr"),
            15 => write!(f, "pc"),
            n => write!(f, "r{n}"),
        }
    }
}

/// A 128-bit vector register, `q0`–`q15`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct QReg(u8);

impl QReg {
    pub const Q0: QReg = QReg(0);
    pub const Q1: QReg = QReg(1);
    pub const Q2: QReg = QReg(2);
    pub const Q3: QReg = QReg(3);
    pub const Q4: QReg = QReg(4);
    pub const Q5: QReg = QReg(5);
    pub const Q6: QReg = QReg(6);
    pub const Q7: QReg = QReg(7);
    pub const Q8: QReg = QReg(8);
    pub const Q9: QReg = QReg(9);
    pub const Q10: QReg = QReg(10);
    pub const Q11: QReg = QReg(11);
    pub const Q12: QReg = QReg(12);
    pub const Q13: QReg = QReg(13);
    pub const Q14: QReg = QReg(14);
    pub const Q15: QReg = QReg(15);

    /// Creates a vector register from its index.
    ///
    /// # Panics
    ///
    /// Panics if `index > 15`.
    pub fn new(index: u8) -> QReg {
        assert!(index <= 15, "vector register index out of range: {index}");
        QReg(index)
    }

    /// The register's index, `0..=15`.
    pub fn index(self) -> u8 {
        self.0
    }

    /// Iterator over all sixteen Q registers.
    pub fn all() -> impl Iterator<Item = QReg> {
        (0..16).map(QReg)
    }
}

impl fmt::Display for QReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_roundtrip_and_names() {
        for i in 0..16 {
            assert_eq!(Reg::new(i).index(), i);
        }
        assert_eq!(Reg::SP.to_string(), "sp");
        assert_eq!(Reg::LR.to_string(), "lr");
        assert_eq!(Reg::PC.to_string(), "pc");
        assert_eq!(Reg::R7.to_string(), "r7");
    }

    #[test]
    #[should_panic]
    fn reg_out_of_range_panics() {
        let _ = Reg::new(16);
    }

    #[test]
    fn qreg_roundtrip_and_names() {
        for i in 0..16 {
            assert_eq!(QReg::new(i).index(), i);
        }
        assert_eq!(QReg::Q9.to_string(), "q9");
        assert_eq!(QReg::all().count(), 16);
        assert_eq!(Reg::all().count(), 16);
    }

    #[test]
    #[should_panic]
    fn qreg_out_of_range_panics() {
        let _ = QReg::new(99);
    }
}
