//! A small assembler with forward-reference label support.
//!
//! [`Asm`] accumulates instructions and resolves label fixups when
//! [`Asm::finish`] is called. Helper methods cover every instruction form
//! plus common macro-ops (32-bit constant materialisation, push/pop).

use crate::instr::{AddrMode, AluOp, Cond, ElemType, Instr, MemSize, Operand, VecOp};
use crate::program::Program;
use crate::reg::{QReg, Reg};

/// A code label; create with [`Asm::new_label`] or [`Asm::here`], bind with
/// [`Asm::bind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// Assembler state. See the [crate-level example](crate).
#[derive(Debug, Default)]
pub struct Asm {
    instrs: Vec<Instr>,
    labels: Vec<Option<u32>>,
    fixups: Vec<(usize, Label, FixKind)>,
}

#[derive(Debug, Clone, Copy)]
enum FixKind {
    Branch,
    Call,
}

impl Asm {
    /// Creates an empty assembler.
    pub fn new() -> Asm {
        Asm::default()
    }

    /// Current emission position, in instruction units.
    pub fn pos(&self) -> u32 {
        self.instrs.len() as u32
    }

    /// Creates an unbound label.
    pub fn new_label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label is already bound.
    pub fn bind(&mut self, label: Label) {
        let pos = self.pos();
        let slot = &mut self.labels[label.0];
        assert!(slot.is_none(), "label bound twice");
        *slot = Some(pos);
    }

    /// Creates a label bound to the current position.
    pub fn here(&mut self) -> Label {
        let l = self.new_label();
        self.bind(l);
        l
    }

    /// Emits a raw instruction.
    pub fn emit(&mut self, instr: Instr) {
        self.instrs.push(instr);
    }

    // --- moves and constants -------------------------------------------

    /// `rd = rm`.
    pub fn mov(&mut self, rd: Reg, rm: Reg) {
        self.emit(Instr::Mov { rd, rm });
    }

    /// Materialises an arbitrary 32-bit constant (one or two instructions).
    pub fn mov_imm(&mut self, rd: Reg, value: i32) {
        let low = value as i16;
        if low as i32 == value {
            self.emit(Instr::MovImm { rd, imm: low });
        } else {
            self.emit(Instr::MovImm { rd, imm: (value & 0xffff) as u16 as i16 });
            self.emit(Instr::MovTop { rd, imm: (value as u32 >> 16) as u16 });
        }
    }

    /// Materialises a float constant by its bit pattern.
    pub fn mov_imm_f32(&mut self, rd: Reg, value: f32) {
        self.mov_imm(rd, value.to_bits() as i32);
    }

    // --- ALU -------------------------------------------------------------

    /// Generic three-operand ALU instruction.
    pub fn alu(&mut self, op: AluOp, rd: Reg, rn: Reg, src2: Operand) {
        self.emit(Instr::Alu { op, rd, rn, src2 });
    }

    /// `rd = rn + rm`.
    pub fn add(&mut self, rd: Reg, rn: Reg, rm: Reg) {
        self.alu(AluOp::Add, rd, rn, Operand::Reg(rm));
    }

    /// `rd = rn + imm`.
    pub fn add_imm(&mut self, rd: Reg, rn: Reg, imm: i16) {
        self.alu(AluOp::Add, rd, rn, Operand::Imm(imm));
    }

    /// `rd = rn - rm`.
    pub fn sub(&mut self, rd: Reg, rn: Reg, rm: Reg) {
        self.alu(AluOp::Sub, rd, rn, Operand::Reg(rm));
    }

    /// `rd = rn - imm`.
    pub fn sub_imm(&mut self, rd: Reg, rn: Reg, imm: i16) {
        self.alu(AluOp::Sub, rd, rn, Operand::Imm(imm));
    }

    /// `rd = rn * rm`.
    pub fn mul(&mut self, rd: Reg, rn: Reg, rm: Reg) {
        self.alu(AluOp::Mul, rd, rn, Operand::Reg(rm));
    }

    /// `rd = rn & rm`.
    pub fn and_(&mut self, rd: Reg, rn: Reg, rm: Reg) {
        self.alu(AluOp::And, rd, rn, Operand::Reg(rm));
    }

    /// `rd = rn & imm`.
    pub fn and_imm(&mut self, rd: Reg, rn: Reg, imm: i16) {
        self.alu(AluOp::And, rd, rn, Operand::Imm(imm));
    }

    /// `rd = rn | rm`.
    pub fn orr(&mut self, rd: Reg, rn: Reg, rm: Reg) {
        self.alu(AluOp::Orr, rd, rn, Operand::Reg(rm));
    }

    /// `rd = rn ^ rm`.
    pub fn eor(&mut self, rd: Reg, rn: Reg, rm: Reg) {
        self.alu(AluOp::Eor, rd, rn, Operand::Reg(rm));
    }

    /// `rd = rn << imm`.
    pub fn lsl_imm(&mut self, rd: Reg, rn: Reg, imm: i16) {
        self.alu(AluOp::Lsl, rd, rn, Operand::Imm(imm));
    }

    /// `rd = rn >> imm` (logical).
    pub fn lsr_imm(&mut self, rd: Reg, rn: Reg, imm: i16) {
        self.alu(AluOp::Lsr, rd, rn, Operand::Imm(imm));
    }

    /// `rd = rn >> imm` (arithmetic).
    pub fn asr_imm(&mut self, rd: Reg, rn: Reg, imm: i16) {
        self.alu(AluOp::Asr, rd, rn, Operand::Imm(imm));
    }

    /// Float add.
    pub fn fadd(&mut self, rd: Reg, rn: Reg, rm: Reg) {
        self.alu(AluOp::FAdd, rd, rn, Operand::Reg(rm));
    }

    /// Float subtract.
    pub fn fsub(&mut self, rd: Reg, rn: Reg, rm: Reg) {
        self.alu(AluOp::FSub, rd, rn, Operand::Reg(rm));
    }

    /// Float multiply.
    pub fn fmul(&mut self, rd: Reg, rn: Reg, rm: Reg) {
        self.alu(AluOp::FMul, rd, rn, Operand::Reg(rm));
    }

    // --- compare and branch ----------------------------------------------

    /// Compare two registers.
    pub fn cmp(&mut self, rn: Reg, rm: Reg) {
        self.emit(Instr::Cmp { rn, src2: Operand::Reg(rm) });
    }

    /// Compare register with immediate.
    pub fn cmp_imm(&mut self, rn: Reg, imm: i16) {
        self.emit(Instr::Cmp { rn, src2: Operand::Imm(imm) });
    }

    /// Conditional branch to `label`.
    pub fn b_to(&mut self, cond: Cond, label: Label) {
        self.fixups.push((self.instrs.len(), label, FixKind::Branch));
        self.emit(Instr::B { cond, offset: 0 });
        // Patch the condition in place (offset fixed up later).
        let idx = self.instrs.len() - 1;
        self.instrs[idx] = Instr::B { cond, offset: 0 };
    }

    /// Unconditional branch to `label`.
    pub fn b(&mut self, label: Label) {
        self.b_to(Cond::Al, label);
    }

    /// Call `label` (`bl`).
    pub fn bl(&mut self, label: Label) {
        self.fixups.push((self.instrs.len(), label, FixKind::Call));
        self.emit(Instr::Bl { offset: 0 });
    }

    /// Return (`bx lr`).
    pub fn bx_lr(&mut self) {
        self.emit(Instr::BxLr);
    }

    // --- memory ------------------------------------------------------------

    /// Word load at `[rn + offset]`.
    pub fn ldr(&mut self, rd: Reg, rn: Reg, offset: i16) {
        self.emit(Instr::Ldr { rd, rn, mode: AddrMode::Offset(offset), size: MemSize::W });
    }

    /// Word load at `[rn]`, then `rn += inc`.
    pub fn ldr_post(&mut self, rd: Reg, rn: Reg, inc: i16) {
        self.emit(Instr::Ldr { rd, rn, mode: AddrMode::PostInc(inc), size: MemSize::W });
    }

    /// Byte load at `[rn + offset]`.
    pub fn ldrb(&mut self, rd: Reg, rn: Reg, offset: i16) {
        self.emit(Instr::Ldr { rd, rn, mode: AddrMode::Offset(offset), size: MemSize::B });
    }

    /// Byte load at `[rn]`, then `rn += inc`.
    pub fn ldrb_post(&mut self, rd: Reg, rn: Reg, inc: i16) {
        self.emit(Instr::Ldr { rd, rn, mode: AddrMode::PostInc(inc), size: MemSize::B });
    }

    /// Half-word load at `[rn]`, then `rn += inc`.
    pub fn ldrh_post(&mut self, rd: Reg, rn: Reg, inc: i16) {
        self.emit(Instr::Ldr { rd, rn, mode: AddrMode::PostInc(inc), size: MemSize::H });
    }

    /// Word store at `[rn + offset]`.
    pub fn str(&mut self, rs: Reg, rn: Reg, offset: i16) {
        self.emit(Instr::Str { rs, rn, mode: AddrMode::Offset(offset), size: MemSize::W });
    }

    /// Word store at `[rn]`, then `rn += inc`.
    pub fn str_post(&mut self, rs: Reg, rn: Reg, inc: i16) {
        self.emit(Instr::Str { rs, rn, mode: AddrMode::PostInc(inc), size: MemSize::W });
    }

    /// Byte store at `[rn + offset]`.
    pub fn strb(&mut self, rs: Reg, rn: Reg, offset: i16) {
        self.emit(Instr::Str { rs, rn, mode: AddrMode::Offset(offset), size: MemSize::B });
    }

    /// Byte store at `[rn]`, then `rn += inc`.
    pub fn strb_post(&mut self, rs: Reg, rn: Reg, inc: i16) {
        self.emit(Instr::Str { rs, rn, mode: AddrMode::PostInc(inc), size: MemSize::B });
    }

    /// Register-indexed load: `rd = mem[rn + (rm << lsl)]`.
    pub fn ldr_idx(&mut self, rd: Reg, rn: Reg, rm: Reg, lsl: u8, size: MemSize) {
        self.emit(Instr::LdrReg { rd, rn, rm, lsl, size });
    }

    /// Register-indexed store: `mem[rn + (rm << lsl)] = rs`.
    pub fn str_idx(&mut self, rs: Reg, rn: Reg, rm: Reg, lsl: u8, size: MemSize) {
        self.emit(Instr::StrReg { rs, rn, rm, lsl, size });
    }

    /// Push one register onto the stack (`str rs, [sp, #-4]!`).
    pub fn push(&mut self, rs: Reg) {
        self.emit(Instr::Str { rs, rn: Reg::SP, mode: AddrMode::PreInc(-4), size: MemSize::W });
    }

    /// Pop one register off the stack (`ldr rd, [sp], #4`).
    pub fn pop(&mut self, rd: Reg) {
        self.emit(Instr::Ldr { rd, rn: Reg::SP, mode: AddrMode::PostInc(4), size: MemSize::W });
    }

    // --- vector -------------------------------------------------------------

    /// 128-bit vector load, with post-increment if `writeback`.
    pub fn vld1(&mut self, qd: QReg, rn: Reg, writeback: bool, et: ElemType) {
        self.emit(Instr::Vld1 { qd, rn, writeback, et });
    }

    /// 128-bit vector store, with post-increment if `writeback`.
    pub fn vst1(&mut self, qs: QReg, rn: Reg, writeback: bool, et: ElemType) {
        self.emit(Instr::Vst1 { qs, rn, writeback, et });
    }

    /// Element-wise vector op.
    pub fn vop(&mut self, op: VecOp, et: ElemType, qd: QReg, qn: QReg, qm: QReg) {
        self.emit(Instr::Vop { op, et, qd, qn, qm });
    }

    /// Element-wise vector add.
    pub fn vadd(&mut self, et: ElemType, qd: QReg, qn: QReg, qm: QReg) {
        self.vop(VecOp::Add, et, qd, qn, qm);
    }

    /// Element-wise vector multiply.
    pub fn vmul(&mut self, et: ElemType, qd: QReg, qn: QReg, qm: QReg) {
        self.vop(VecOp::Mul, et, qd, qn, qm);
    }

    /// Splat an immediate into all lanes.
    pub fn vdup_imm(&mut self, qd: QReg, imm: i16, et: ElemType) {
        self.emit(Instr::VdupImm { qd, imm, et });
    }

    /// Splat a scalar register into all lanes.
    pub fn vdup(&mut self, qd: QReg, rm: Reg, et: ElemType) {
        self.emit(Instr::Vdup { qd, rm, et });
    }

    /// Lane-wise logical shift right by an immediate.
    pub fn vshr_imm(&mut self, qd: QReg, qn: QReg, shift: u8, et: ElemType) {
        self.emit(Instr::VshrImm { qd, qn, shift, et });
    }

    /// Horizontal reduce-add into a scalar register.
    pub fn vaddv(&mut self, rd: Reg, qn: QReg, et: ElemType) {
        self.emit(Instr::Vaddv { rd, qn, et });
    }

    // --- control ------------------------------------------------------------

    /// Emit `nop`.
    pub fn nop(&mut self) {
        self.emit(Instr::Nop);
    }

    /// Emit `halt`.
    pub fn halt(&mut self) {
        self.emit(Instr::Halt);
    }

    /// Resolves all label fixups and returns the program.
    ///
    /// # Panics
    ///
    /// Panics if any referenced label was never bound.
    pub fn finish(mut self) -> Program {
        for (at, label, kind) in std::mem::take(&mut self.fixups) {
            let target = self.labels[label.0].expect("label referenced but never bound");
            let offset = target as i64 - at as i64;
            let offset = i32::try_from(offset).expect("branch offset overflow");
            self.instrs[at] = match (kind, self.instrs[at]) {
                (FixKind::Branch, Instr::B { cond, .. }) => Instr::B { cond, offset },
                (FixKind::Call, Instr::Bl { .. }) => Instr::Bl { offset },
                _ => unreachable!("fixup does not point at a branch"),
            };
        }
        Program::new(self.instrs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_resolve_backward_and_forward() {
        let mut a = Asm::new();
        let end = a.new_label();
        let top = a.here();
        a.nop();
        a.b_to(Cond::Eq, end); // forward
        a.b(top); // backward
        a.bind(end);
        a.halt();
        let p = a.finish();
        assert_eq!(p.fetch(1), Some(Instr::B { cond: Cond::Eq, offset: 2 }));
        assert_eq!(p.fetch(2), Some(Instr::B { cond: Cond::Al, offset: -2 }));
    }

    #[test]
    fn mov_imm_small_is_single_instruction() {
        let mut a = Asm::new();
        a.mov_imm(Reg::R0, 100);
        a.mov_imm(Reg::R1, -1);
        assert_eq!(a.pos(), 2);
    }

    #[test]
    fn mov_imm_large_uses_movt() {
        let mut a = Asm::new();
        a.mov_imm(Reg::R0, 0x0012_3456);
        let p = a.finish();
        assert_eq!(p.len(), 2);
        assert_eq!(p.fetch(0), Some(Instr::MovImm { rd: Reg::R0, imm: 0x3456 }));
        assert_eq!(p.fetch(1), Some(Instr::MovTop { rd: Reg::R0, imm: 0x12 }));
    }

    #[test]
    fn call_fixup() {
        let mut a = Asm::new();
        let func = a.new_label();
        a.bl(func);
        a.halt();
        a.bind(func);
        a.bx_lr();
        let p = a.finish();
        assert_eq!(p.fetch(0), Some(Instr::Bl { offset: 2 }));
    }

    #[test]
    #[should_panic]
    fn unbound_label_panics() {
        let mut a = Asm::new();
        let l = a.new_label();
        a.b(l);
        let _ = a.finish();
    }

    #[test]
    #[should_panic]
    fn double_bind_panics() {
        let mut a = Asm::new();
        let l = a.here();
        a.bind(l);
    }

    #[test]
    fn push_pop_forms() {
        let mut a = Asm::new();
        a.push(Reg::R4);
        a.pop(Reg::R4);
        let p = a.finish();
        assert_eq!(
            p.fetch(0),
            Some(Instr::Str {
                rs: Reg::R4,
                rn: Reg::SP,
                mode: AddrMode::PreInc(-4),
                size: MemSize::W
            })
        );
        assert_eq!(
            p.fetch(1),
            Some(Instr::Ldr {
                rd: Reg::R4,
                rn: Reg::SP,
                mode: AddrMode::PostInc(4),
                size: MemSize::W
            })
        );
    }
}
