//! Property tests: every valid instruction round-trips through the binary
//! encoding, and every decodable word re-encodes to itself.

use dsa_isa::{
    decode, encode, AddrMode, AluOp, Cond, ElemType, Instr, MemSize, Operand, QReg, Reg, VecOp,
};
use proptest::prelude::*;

fn any_reg() -> impl Strategy<Value = Reg> {
    (0u8..16).prop_map(Reg::new)
}

fn any_qreg() -> impl Strategy<Value = QReg> {
    (0u8..16).prop_map(QReg::new)
}

fn any_cond() -> impl Strategy<Value = Cond> {
    prop_oneof![
        Just(Cond::Eq),
        Just(Cond::Ne),
        Just(Cond::Ge),
        Just(Cond::Lt),
        Just(Cond::Gt),
        Just(Cond::Le),
        Just(Cond::Al),
    ]
}

fn any_alu_op() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::Rsb),
        Just(AluOp::Mul),
        Just(AluOp::And),
        Just(AluOp::Orr),
        Just(AluOp::Eor),
        Just(AluOp::Lsl),
        Just(AluOp::Lsr),
        Just(AluOp::Asr),
        Just(AluOp::FAdd),
        Just(AluOp::FSub),
        Just(AluOp::FMul),
    ]
}

fn any_vec_op() -> impl Strategy<Value = VecOp> {
    prop_oneof![
        Just(VecOp::Add),
        Just(VecOp::Sub),
        Just(VecOp::Mul),
        Just(VecOp::Min),
        Just(VecOp::Max),
        Just(VecOp::And),
        Just(VecOp::Orr),
        Just(VecOp::Eor),
    ]
}

fn any_elem() -> impl Strategy<Value = ElemType> {
    prop_oneof![
        Just(ElemType::I8),
        Just(ElemType::I16),
        Just(ElemType::I32),
        Just(ElemType::F32),
    ]
}

fn any_size() -> impl Strategy<Value = MemSize> {
    prop_oneof![Just(MemSize::B), Just(MemSize::H), Just(MemSize::W)]
}

fn any_operand() -> impl Strategy<Value = Operand> {
    prop_oneof![any_reg().prop_map(Operand::Reg), any::<i16>().prop_map(Operand::Imm)]
}

fn any_mode() -> impl Strategy<Value = AddrMode> {
    prop_oneof![
        any::<i16>().prop_map(AddrMode::Offset),
        any::<i16>().prop_map(AddrMode::PostInc),
        any::<i16>().prop_map(AddrMode::PreInc),
    ]
}

fn any_lane(et: ElemType) -> impl Strategy<Value = u8> {
    0u8..(et.lanes() as u8)
}

fn any_instr() -> impl Strategy<Value = Instr> {
    let branch_off = -(1i32 << 23)..(1i32 << 23);
    prop_oneof![
        Just(Instr::Nop),
        Just(Instr::Halt),
        Just(Instr::BxLr),
        (any_reg(), any::<i16>()).prop_map(|(rd, imm)| Instr::MovImm { rd, imm }),
        (any_reg(), any::<u16>()).prop_map(|(rd, imm)| Instr::MovTop { rd, imm }),
        (any_reg(), any_reg()).prop_map(|(rd, rm)| Instr::Mov { rd, rm }),
        (any_alu_op(), any_reg(), any_reg(), any_operand())
            .prop_map(|(op, rd, rn, src2)| Instr::Alu { op, rd, rn, src2 }),
        (any_reg(), any_operand()).prop_map(|(rn, src2)| Instr::Cmp { rn, src2 }),
        (any_cond(), branch_off.clone()).prop_map(|(cond, offset)| Instr::B { cond, offset }),
        branch_off.prop_map(|offset| Instr::Bl { offset }),
        (any_reg(), any_reg(), any_mode(), any_size())
            .prop_map(|(rd, rn, mode, size)| Instr::Ldr { rd, rn, mode, size }),
        (any_reg(), any_reg(), any_mode(), any_size())
            .prop_map(|(rs, rn, mode, size)| Instr::Str { rs, rn, mode, size }),
        (any_reg(), any_reg(), any_reg(), 0u8..8, any_size())
            .prop_map(|(rd, rn, rm, lsl, size)| Instr::LdrReg { rd, rn, rm, lsl, size }),
        (any_reg(), any_reg(), any_reg(), 0u8..8, any_size())
            .prop_map(|(rs, rn, rm, lsl, size)| Instr::StrReg { rs, rn, rm, lsl, size }),
        (any_qreg(), any_reg(), any::<bool>(), any_elem())
            .prop_map(|(qd, rn, writeback, et)| Instr::Vld1 { qd, rn, writeback, et }),
        (any_qreg(), any_reg(), any::<bool>(), any_elem())
            .prop_map(|(qs, rn, writeback, et)| Instr::Vst1 { qs, rn, writeback, et }),
        (any_qreg(), any_reg(), any::<bool>(), any_elem()).prop_flat_map(
            |(qd, rn, writeback, et)| any_lane(et)
                .prop_map(move |lane| Instr::Vld1Lane { qd, lane, rn, writeback, et })
        ),
        (any_qreg(), any_reg(), any::<bool>(), any_elem()).prop_flat_map(
            |(qs, rn, writeback, et)| any_lane(et)
                .prop_map(move |lane| Instr::Vst1Lane { qs, lane, rn, writeback, et })
        ),
        (any_vec_op(), any_elem(), any_qreg(), any_qreg(), any_qreg())
            .prop_map(|(op, et, qd, qn, qm)| Instr::Vop { op, et, qd, qn, qm }),
        (any_qreg(), any::<i16>(), any_elem())
            .prop_map(|(qd, imm, et)| Instr::VdupImm { qd, imm, et }),
        (any_qreg(), any_reg(), any_elem()).prop_map(|(qd, rm, et)| Instr::Vdup { qd, rm, et }),
        (any_qreg(), any_qreg(), prop_oneof![
            Just(ElemType::I8), Just(ElemType::I16), Just(ElemType::I32)
        ])
        .prop_flat_map(|(qd, qn, et)| {
            (0u8..(et.lane_bytes() * 8) as u8)
                .prop_map(move |shift| Instr::VshrImm { qd, qn, shift, et })
        }),
        (any_qreg(), any_qreg()).prop_map(|(qd, qm)| Instr::Vmov { qd, qm }),
        (any_reg(), any_qreg(), any_elem()).prop_map(|(rd, qn, et)| Instr::Vaddv { rd, qn, et }),
        (any_reg(), any_qreg(), any_elem()).prop_flat_map(|(rd, qn, et)| any_lane(et)
            .prop_map(move |lane| Instr::VmovToScalar { rd, qn, lane, et })),
        (any_qreg(), any_reg(), any_elem()).prop_flat_map(|(qd, rm, et)| any_lane(et)
            .prop_map(move |lane| Instr::VmovFromScalar { qd, lane, rm, et })),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2048))]

    #[test]
    fn encode_decode_roundtrip(instr in any_instr()) {
        let word = encode(instr);
        let back = decode(word).expect("decodable");
        prop_assert_eq!(instr, back);
    }

    #[test]
    fn decode_encode_fixpoint(word in any::<u32>()) {
        // Decoding is partial; when it succeeds the result must re-encode
        // to a word that decodes to the same instruction (the encoding may
        // canonicalise junk bits, so compare at the instruction level).
        if let Ok(instr) = decode(word) {
            let canon = encode(instr);
            prop_assert_eq!(decode(canon).expect("canonical word decodes"), instr);
        }
    }

    #[test]
    fn disassembly_is_nonempty(instr in any_instr()) {
        prop_assert!(!instr.to_string().is_empty());
    }
}
