//! The cache model against a naive reference implementation of a
//! set-associative LRU cache: hit/miss decisions must agree on random
//! access traces.

use dsa_mem::{Cache, CacheConfig};
use proptest::prelude::*;

/// A deliberately simple reference: per set, a vector ordered from MRU
/// to LRU.
struct RefCache {
    sets: Vec<Vec<u32>>,
    ways: usize,
    line: u32,
}

impl RefCache {
    fn new(cfg: CacheConfig) -> RefCache {
        RefCache {
            sets: vec![Vec::new(); cfg.sets() as usize],
            ways: cfg.ways as usize,
            line: cfg.line_bytes,
        }
    }

    fn access(&mut self, addr: u32) -> bool {
        let line = addr / self.line;
        let n_sets = self.sets.len() as u32;
        let set = &mut self.sets[(line % n_sets) as usize];
        let tag = line / n_sets;
        if let Some(pos) = set.iter().position(|&t| t == tag) {
            set.remove(pos);
            set.insert(0, tag);
            true
        } else {
            set.insert(0, tag);
            set.truncate(self.ways);
            false
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn model_matches_reference(
        ways in 1u32..5,
        sets_log in 1u32..5,
        trace in prop::collection::vec((0u32..8192, any::<bool>()), 1..400),
    ) {
        let line = 64u32;
        let size = line * ways * (1 << sets_log);
        let cfg = CacheConfig::new(size, line, ways);
        let mut model = Cache::new(cfg);
        let mut reference = RefCache::new(cfg);
        for (i, &(addr, write)) in trace.iter().enumerate() {
            let expect = reference.access(addr);
            let got = model.access(addr, write).hit;
            prop_assert_eq!(got, expect, "diverged at access {} (addr {})", i, addr);
        }
        let stats = model.stats();
        prop_assert_eq!(stats.accesses(), trace.len() as u64);
    }

    /// Warming never changes hit/miss decisions of later accesses in a
    /// way the reference (pre-accessed once) would not predict, for
    /// fully-cold caches and disjoint warm regions.
    #[test]
    fn warm_installs_lines(addrs in prop::collection::vec(0u32..4096, 1..64)) {
        let cfg = CacheConfig::new(64 * 1024, 64, 4);
        let mut model = Cache::new(cfg);
        for &a in &addrs {
            model.warm(a);
        }
        for &a in &addrs {
            prop_assert!(model.probe(a), "warmed line must be resident (large cache)");
        }
        prop_assert_eq!(model.stats().accesses(), 0, "warming is invisible to statistics");
    }
}
