//! Set-associative cache with true-LRU replacement.

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u32,
    /// Line size in bytes (power of two).
    pub line_bytes: u32,
    /// Associativity.
    pub ways: u32,
}

impl CacheConfig {
    /// Creates a configuration, validating the geometry.
    ///
    /// # Panics
    ///
    /// Panics unless `line_bytes` is a power of two and
    /// `size_bytes` is divisible by `line_bytes * ways`.
    pub fn new(size_bytes: u32, line_bytes: u32, ways: u32) -> CacheConfig {
        assert!(line_bytes.is_power_of_two(), "line size must be a power of two");
        assert!(ways >= 1, "associativity must be at least 1");
        assert_eq!(
            size_bytes % (line_bytes * ways),
            0,
            "capacity must divide into sets"
        );
        assert!(size_bytes / (line_bytes * ways) >= 1, "at least one set required");
        CacheConfig { size_bytes, line_bytes, ways }
    }

    /// Number of sets.
    pub fn sets(&self) -> u32 {
        self.size_bytes / (self.line_bytes * self.ways)
    }
}

/// Hit/miss statistics for one cache level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
    /// Dirty lines written back on eviction.
    pub writebacks: u64,
}

impl CacheStats {
    /// Total number of accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit rate in `0.0..=1.0` (1.0 when there were no accesses).
    pub fn hit_rate(&self) -> f64 {
        if self.accesses() == 0 {
            1.0
        } else {
            self.hits as f64 / self.accesses() as f64
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    valid: bool,
    dirty: bool,
    tag: u32,
    /// Monotonic counter of last use; smallest = least recently used.
    last_use: u64,
}

/// One level of a write-back, write-allocate cache with true-LRU
/// replacement. The cache is a tag store only — data lives in
/// [`crate::MainMemory`]; this models timing and occupancy, which is all
/// the simulator needs.
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    /// `log2(line_bytes)` — line size is validated to be a power of two.
    line_shift: u32,
    /// Set count, cached so the per-access index math never re-divides
    /// the geometry.
    sets: u32,
    /// `Some((set_mask, set_shift))` when the set count is a power of
    /// two (every realistic geometry): the per-access set/tag split is
    /// then two shifts and a mask instead of two integer divisions.
    set_pow2: Option<(u32, u32)>,
    lines: Vec<Line>,
    /// `mru[set]`: absolute index into `lines` of the set's most
    /// recently hit (or filled) way — a way-prediction fast path. Purely
    /// a host-side accelerator: a stale entry at worst wastes one tag
    /// compare before the full scan, never changes hit/miss outcomes,
    /// LRU ordering, or statistics.
    mru: Vec<u32>,
    tick: u64,
    stats: CacheStats,
}

/// Result of a cache lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lookup {
    /// Whether the access hit.
    pub hit: bool,
    /// Whether a dirty victim had to be written back.
    pub writeback: bool,
}

impl Cache {
    /// Creates an empty cache.
    pub fn new(config: CacheConfig) -> Cache {
        let sets = config.sets();
        let total_lines = (sets * config.ways) as usize;
        let set_pow2 = sets
            .is_power_of_two()
            .then(|| (sets - 1, sets.trailing_zeros()));
        Cache {
            config,
            line_shift: config.line_bytes.trailing_zeros(),
            sets,
            set_pow2,
            lines: vec![Line::default(); total_lines],
            mru: (0..sets).map(|s| s * config.ways).collect(),
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets statistics (contents are kept).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    #[inline]
    fn set_of(&self, addr: u32) -> usize {
        let line = addr >> self.line_shift;
        match self.set_pow2 {
            Some((mask, _)) => (line & mask) as usize,
            None => (line % self.sets) as usize,
        }
    }

    #[inline]
    fn set_range(&self, addr: u32) -> (usize, usize) {
        let start = self.set_of(addr) * self.config.ways as usize;
        (start, start + self.config.ways as usize)
    }

    #[inline]
    fn tag_of(&self, addr: u32) -> u32 {
        let line = addr >> self.line_shift;
        match self.set_pow2 {
            Some((_, shift)) => line >> shift,
            None => line / self.sets,
        }
    }

    /// Performs an access, allocating on miss; returns hit/writeback info.
    #[inline]
    pub fn access(&mut self, addr: u32, write: bool) -> Lookup {
        self.tick += 1;
        let tag = self.tag_of(addr);
        let set_idx = self.set_of(addr);
        let start = set_idx * self.config.ways as usize;
        let end = start + self.config.ways as usize;
        // Way prediction: check the set's most recently hit way first.
        // Hot loops overwhelmingly re-hit that way, and the single
        // compare avoids the variable-trip-count scan below, whose exit
        // branch mispredicts whenever successive accesses to a set land
        // in different ways.
        let m = self.mru[set_idx] as usize;
        if let Some(line) = self.lines.get_mut(m) {
            if line.valid && line.tag == tag {
                line.last_use = self.tick;
                line.dirty |= write;
                self.stats.hits += 1;
                return Lookup { hit: true, writeback: false };
            }
        }
        // Predicted way missed: full scan of the set.
        let set = &mut self.lines[start..end];
        for (w, line) in set.iter_mut().enumerate() {
            if line.valid && line.tag == tag {
                line.last_use = self.tick;
                line.dirty |= write;
                self.stats.hits += 1;
                self.mru[set_idx] = (start + w) as u32;
                return Lookup { hit: true, writeback: false };
            }
        }
        // Miss: pick victim (invalid first, else true LRU).
        self.stats.misses += 1;
        let victim = set
            .iter()
            .enumerate()
            .min_by_key(|(_, l)| (l.valid, l.last_use))
            .map(|(i, _)| i)
            .expect("non-empty set");
        let evicted_dirty = set[victim].valid && set[victim].dirty;
        set[victim] = Line { valid: true, dirty: write, tag, last_use: self.tick };
        self.mru[set_idx] = (start + victim) as u32;
        if evicted_dirty {
            self.stats.writebacks += 1;
        }
        Lookup { hit: false, writeback: evicted_dirty }
    }

    /// Records `n` additional hits to the already-resident line containing
    /// `addr` without re-walking the tag store.
    ///
    /// This is the batched form of calling [`Cache::access`] `n` times on
    /// the same line with nothing in between: after the first access the
    /// line is MRU, so repeats hit, and collapsing them preserves the
    /// relative `last_use` ordering among distinct lines (the only thing
    /// LRU victim selection consults — tick *values* diverge, but
    /// `min_by_key` only compares). Statistics come out identical.
    ///
    /// Caller must guarantee residency (the simulator's superblock fast
    /// path does: within a block, same-line follower fetches come
    /// straight after the leader in the L1I, and interleaved *data*
    /// accesses go to the separate L1D, so nothing can evict the line
    /// between the fetches).
    pub fn count_hits(&mut self, addr: u32, n: u64) {
        debug_assert!(self.probe(addr), "count_hits on a non-resident line");
        self.stats.hits += n;
    }

    /// Whether the line containing `addr` is currently resident (no state
    /// change, no statistics update).
    pub fn probe(&self, addr: u32) -> bool {
        let tag = self.tag_of(addr);
        let (start, end) = self.set_range(addr);
        self.lines[start..end].iter().any(|l| l.valid && l.tag == tag)
    }

    /// Installs the line containing `addr` without touching statistics —
    /// models data made resident by an earlier program phase (input
    /// generation / file load).
    pub fn warm(&mut self, addr: u32) {
        self.tick += 1;
        let tag = self.tag_of(addr);
        let (start, end) = self.set_range(addr);
        if self.lines[start..end].iter().any(|l| l.valid && l.tag == tag) {
            return;
        }
        let set = &mut self.lines[start..end];
        let victim = set
            .iter()
            .enumerate()
            .min_by_key(|(_, l)| (l.valid, l.last_use))
            .map(|(i, _)| i)
            .expect("non-empty set");
        set[victim] = Line { valid: true, dirty: false, tag, last_use: self.tick };
    }

    /// Invalidates all lines (statistics are kept).
    pub fn flush(&mut self) {
        for l in &mut self.lines {
            *l = Line::default();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        // 4 sets x 2 ways x 16B lines = 128 B
        Cache::new(CacheConfig::new(128, 16, 2))
    }

    #[test]
    fn geometry() {
        let c = CacheConfig::new(64 * 1024, 64, 4);
        assert_eq!(c.sets(), 256);
    }

    #[test]
    #[should_panic]
    fn bad_geometry_panics() {
        let _ = CacheConfig::new(100, 16, 2);
    }

    #[test]
    fn first_access_misses_then_hits() {
        let mut c = small();
        assert!(!c.access(0x40, false).hit);
        assert!(c.access(0x40, false).hit);
        assert!(c.access(0x4C, false).hit, "same 16B line");
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = small();
        // Three lines mapping to set 0 (stride = sets*line = 4*16 = 64).
        c.access(0, false); // A
        c.access(64, false); // B
        c.access(0, false); // touch A -> B is LRU
        c.access(128, false); // C evicts B
        assert!(c.probe(0), "A resident");
        assert!(!c.probe(64), "B evicted");
        assert!(c.probe(128), "C resident");
    }

    #[test]
    fn dirty_eviction_counts_writeback() {
        let mut c = small();
        c.access(0, true); // dirty A
        c.access(64, false); // B
        c.access(128, false); // evicts A (LRU), dirty -> writeback
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn flush_invalidates() {
        let mut c = small();
        c.access(0, false);
        assert!(c.probe(0));
        c.flush();
        assert!(!c.probe(0));
        assert!(!c.access(0, false).hit);
    }

    #[test]
    fn count_hits_matches_repeated_access() {
        // Batched accounting must equal n real same-line accesses: same
        // stats, and the same victim decisions afterwards.
        let mut step = small();
        let mut batched = small();
        step.access(0x40, false);
        batched.access(0x40, false);
        for _ in 0..7 {
            step.access(0x44, false);
        }
        batched.count_hits(0x44, 7);
        assert_eq!(step.stats(), batched.stats());
        // Fill the set so LRU decisions matter (set stride = 64).
        for &a in &[0x40 + 64, 0x40 + 128, 0x40 + 192] {
            step.access(a, false);
            batched.access(a, false);
        }
        assert_eq!(step.probe(0x40), batched.probe(0x40));
        assert_eq!(step.stats(), batched.stats());
    }

    #[test]
    fn non_pow2_sets_use_division_fallback() {
        // 3 sets x 2 ways x 16B lines = 96 B: exercises the non-pow2
        // modulo path end to end (index, tag, LRU, probe).
        let mut c = Cache::new(CacheConfig::new(96, 16, 2));
        assert_eq!(c.config().sets(), 3);
        // Set stride = 3 * 16 = 48; 0 and 48 share set 0, distinct tags.
        assert!(!c.access(0, false).hit);
        assert!(!c.access(48, false).hit);
        assert!(c.access(0, false).hit);
        assert!(c.access(48, false).hit);
        c.access(96, false); // third line in set 0 evicts LRU (addr 0)
        assert!(!c.probe(0));
        assert!(c.probe(48));
        assert!(c.probe(96));
        // Different set: 16 maps to set 1, untouched by the above.
        assert!(!c.access(16, false).hit);
        assert!(c.access(16, false).hit);
    }

    #[test]
    fn hit_rate_monotonic_in_size() {
        // A larger cache never has a lower hit-count on the same trace.
        let trace: Vec<u32> = (0..2000u32).map(|i| (i * 97) % 4096).collect();
        let mut prev_hits = 0;
        for size in [128u32, 256, 512, 1024, 4096] {
            let mut c = Cache::new(CacheConfig::new(size, 16, 2));
            for &a in &trace {
                c.access(a, false);
            }
            assert!(c.stats().hits >= prev_hits, "size {size}");
            prev_hits = c.stats().hits;
        }
    }
}
