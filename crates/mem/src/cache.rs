//! Set-associative cache with true-LRU replacement.

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u32,
    /// Line size in bytes (power of two).
    pub line_bytes: u32,
    /// Associativity.
    pub ways: u32,
}

impl CacheConfig {
    /// Creates a configuration, validating the geometry.
    ///
    /// # Panics
    ///
    /// Panics unless `line_bytes` is a power of two and
    /// `size_bytes` is divisible by `line_bytes * ways`.
    pub fn new(size_bytes: u32, line_bytes: u32, ways: u32) -> CacheConfig {
        assert!(line_bytes.is_power_of_two(), "line size must be a power of two");
        assert!(ways >= 1, "associativity must be at least 1");
        assert_eq!(
            size_bytes % (line_bytes * ways),
            0,
            "capacity must divide into sets"
        );
        assert!(size_bytes / (line_bytes * ways) >= 1, "at least one set required");
        CacheConfig { size_bytes, line_bytes, ways }
    }

    /// Number of sets.
    pub fn sets(&self) -> u32 {
        self.size_bytes / (self.line_bytes * self.ways)
    }
}

/// Hit/miss statistics for one cache level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
    /// Dirty lines written back on eviction.
    pub writebacks: u64,
}

impl CacheStats {
    /// Total number of accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit rate in `0.0..=1.0` (1.0 when there were no accesses).
    pub fn hit_rate(&self) -> f64 {
        if self.accesses() == 0 {
            1.0
        } else {
            self.hits as f64 / self.accesses() as f64
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    valid: bool,
    dirty: bool,
    tag: u32,
    /// Monotonic counter of last use; smallest = least recently used.
    last_use: u64,
}

/// One level of a write-back, write-allocate cache with true-LRU
/// replacement. The cache is a tag store only — data lives in
/// [`crate::MainMemory`]; this models timing and occupancy, which is all
/// the simulator needs.
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    lines: Vec<Line>,
    tick: u64,
    stats: CacheStats,
}

/// Result of a cache lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lookup {
    /// Whether the access hit.
    pub hit: bool,
    /// Whether a dirty victim had to be written back.
    pub writeback: bool,
}

impl Cache {
    /// Creates an empty cache.
    pub fn new(config: CacheConfig) -> Cache {
        let total_lines = (config.sets() * config.ways) as usize;
        Cache { config, lines: vec![Line::default(); total_lines], tick: 0, stats: CacheStats::default() }
    }

    /// The cache geometry.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets statistics (contents are kept).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    fn set_range(&self, addr: u32) -> (usize, usize) {
        let line = addr / self.config.line_bytes;
        let set = (line % self.config.sets()) as usize;
        let start = set * self.config.ways as usize;
        (start, start + self.config.ways as usize)
    }

    fn tag_of(&self, addr: u32) -> u32 {
        addr / self.config.line_bytes / self.config.sets()
    }

    /// Performs an access, allocating on miss; returns hit/writeback info.
    pub fn access(&mut self, addr: u32, write: bool) -> Lookup {
        self.tick += 1;
        let tag = self.tag_of(addr);
        let (start, end) = self.set_range(addr);
        // Hit path.
        for line in &mut self.lines[start..end] {
            if line.valid && line.tag == tag {
                line.last_use = self.tick;
                line.dirty |= write;
                self.stats.hits += 1;
                return Lookup { hit: true, writeback: false };
            }
        }
        // Miss: pick victim (invalid first, else true LRU).
        self.stats.misses += 1;
        let set = &mut self.lines[start..end];
        let victim = set
            .iter()
            .enumerate()
            .min_by_key(|(_, l)| (l.valid, l.last_use))
            .map(|(i, _)| i)
            .expect("non-empty set");
        let evicted_dirty = set[victim].valid && set[victim].dirty;
        set[victim] = Line { valid: true, dirty: write, tag, last_use: self.tick };
        if evicted_dirty {
            self.stats.writebacks += 1;
        }
        Lookup { hit: false, writeback: evicted_dirty }
    }

    /// Records `n` additional hits to the already-resident line containing
    /// `addr` without re-walking the tag store.
    ///
    /// This is the batched form of calling [`Cache::access`] `n` times on
    /// the same line with nothing in between: after the first access the
    /// line is MRU, so repeats hit, and collapsing them preserves the
    /// relative `last_use` ordering among distinct lines (the only thing
    /// LRU victim selection consults — tick *values* diverge, but
    /// `min_by_key` only compares). Statistics come out identical.
    ///
    /// Caller must guarantee residency (the simulator's superblock fast
    /// path does: within a block, same-line follower fetches come
    /// straight after the leader in the L1I, and interleaved *data*
    /// accesses go to the separate L1D, so nothing can evict the line
    /// between the fetches).
    pub fn count_hits(&mut self, addr: u32, n: u64) {
        debug_assert!(self.probe(addr), "count_hits on a non-resident line");
        self.stats.hits += n;
    }

    /// Whether the line containing `addr` is currently resident (no state
    /// change, no statistics update).
    pub fn probe(&self, addr: u32) -> bool {
        let tag = self.tag_of(addr);
        let (start, end) = self.set_range(addr);
        self.lines[start..end].iter().any(|l| l.valid && l.tag == tag)
    }

    /// Installs the line containing `addr` without touching statistics —
    /// models data made resident by an earlier program phase (input
    /// generation / file load).
    pub fn warm(&mut self, addr: u32) {
        self.tick += 1;
        let tag = self.tag_of(addr);
        let (start, end) = self.set_range(addr);
        if self.lines[start..end].iter().any(|l| l.valid && l.tag == tag) {
            return;
        }
        let set = &mut self.lines[start..end];
        let victim = set
            .iter()
            .enumerate()
            .min_by_key(|(_, l)| (l.valid, l.last_use))
            .map(|(i, _)| i)
            .expect("non-empty set");
        set[victim] = Line { valid: true, dirty: false, tag, last_use: self.tick };
    }

    /// Invalidates all lines (statistics are kept).
    pub fn flush(&mut self) {
        for l in &mut self.lines {
            *l = Line::default();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        // 4 sets x 2 ways x 16B lines = 128 B
        Cache::new(CacheConfig::new(128, 16, 2))
    }

    #[test]
    fn geometry() {
        let c = CacheConfig::new(64 * 1024, 64, 4);
        assert_eq!(c.sets(), 256);
    }

    #[test]
    #[should_panic]
    fn bad_geometry_panics() {
        let _ = CacheConfig::new(100, 16, 2);
    }

    #[test]
    fn first_access_misses_then_hits() {
        let mut c = small();
        assert!(!c.access(0x40, false).hit);
        assert!(c.access(0x40, false).hit);
        assert!(c.access(0x4C, false).hit, "same 16B line");
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = small();
        // Three lines mapping to set 0 (stride = sets*line = 4*16 = 64).
        c.access(0, false); // A
        c.access(64, false); // B
        c.access(0, false); // touch A -> B is LRU
        c.access(128, false); // C evicts B
        assert!(c.probe(0), "A resident");
        assert!(!c.probe(64), "B evicted");
        assert!(c.probe(128), "C resident");
    }

    #[test]
    fn dirty_eviction_counts_writeback() {
        let mut c = small();
        c.access(0, true); // dirty A
        c.access(64, false); // B
        c.access(128, false); // evicts A (LRU), dirty -> writeback
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn flush_invalidates() {
        let mut c = small();
        c.access(0, false);
        assert!(c.probe(0));
        c.flush();
        assert!(!c.probe(0));
        assert!(!c.access(0, false).hit);
    }

    #[test]
    fn count_hits_matches_repeated_access() {
        // Batched accounting must equal n real same-line accesses: same
        // stats, and the same victim decisions afterwards.
        let mut step = small();
        let mut batched = small();
        step.access(0x40, false);
        batched.access(0x40, false);
        for _ in 0..7 {
            step.access(0x44, false);
        }
        batched.count_hits(0x44, 7);
        assert_eq!(step.stats(), batched.stats());
        // Fill the set so LRU decisions matter (set stride = 64).
        for &a in &[0x40 + 64, 0x40 + 128, 0x40 + 192] {
            step.access(a, false);
            batched.access(a, false);
        }
        assert_eq!(step.probe(0x40), batched.probe(0x40));
        assert_eq!(step.stats(), batched.stats());
    }

    #[test]
    fn hit_rate_monotonic_in_size() {
        // A larger cache never has a lower hit-count on the same trace.
        let trace: Vec<u32> = (0..2000u32).map(|i| (i * 97) % 4096).collect();
        let mut prev_hits = 0;
        for size in [128u32, 256, 512, 1024, 4096] {
            let mut c = Cache::new(CacheConfig::new(size, 16, 2));
            for &a in &trace {
                c.access(a, false);
            }
            assert!(c.stats().hits >= prev_hits, "size {size}");
            prev_hits = c.stats().hits;
        }
    }
}
