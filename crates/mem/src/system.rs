//! The two-level memory system front-end used by the CPU model.

use crate::cache::{Cache, CacheConfig, CacheStats};

/// Configuration of the whole memory system.
///
/// The default matches the paper's setup: 64 KB of L1 split into 32 KB
/// instruction and 32 KB data caches, a 512 KB unified L2, LRU
/// replacement, with 2/12/100-cycle L1/L2/DRAM latencies at 1 GHz.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryConfig {
    /// L1 instruction cache geometry.
    pub l1i: CacheConfig,
    /// L1 data cache geometry.
    pub l1d: CacheConfig,
    /// Unified L2 geometry.
    pub l2: CacheConfig,
    /// L1 hit latency, cycles.
    pub l1_latency: u32,
    /// L2 hit latency, cycles (total, on L1 miss).
    pub l2_latency: u32,
    /// DRAM latency, cycles (total, on L2 miss).
    pub dram_latency: u32,
}

impl Default for MemoryConfig {
    fn default() -> MemoryConfig {
        MemoryConfig {
            l1i: CacheConfig::new(32 * 1024, 64, 4),
            l1d: CacheConfig::new(32 * 1024, 64, 4),
            l2: CacheConfig::new(512 * 1024, 64, 8),
            l1_latency: 2,
            l2_latency: 12,
            dram_latency: 100,
        }
    }
}

/// Per-level access statistics for the whole system.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoryStats {
    /// L1 instruction cache statistics.
    pub l1i: CacheStats,
    /// L1 data cache statistics.
    pub l1d: CacheStats,
    /// L2 statistics (instruction + data refills).
    pub l2: CacheStats,
    /// Number of DRAM accesses (L2 misses plus dirty writebacks).
    pub dram_accesses: u64,
}

/// The L1I/L1D/L2/DRAM hierarchy. Returns the latency of every access and
/// records statistics; data contents live in [`crate::MainMemory`].
#[derive(Debug, Clone)]
pub struct MemorySystem {
    config: MemoryConfig,
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    dram_accesses: u64,
}

impl MemorySystem {
    /// Creates an empty (cold) memory system.
    pub fn new(config: MemoryConfig) -> MemorySystem {
        MemorySystem {
            config,
            l1i: Cache::new(config.l1i),
            l1d: Cache::new(config.l1d),
            l2: Cache::new(config.l2),
            dram_accesses: 0,
        }
    }

    /// The configuration this system was built with.
    pub fn config(&self) -> MemoryConfig {
        self.config
    }

    /// Performs a data access (load or store) and returns its latency in
    /// cycles.
    #[inline]
    pub fn access_data(&mut self, addr: u32, write: bool) -> u32 {
        let l1 = self.l1d.access(addr, write);
        if l1.writeback {
            // Dirty victim drains into L2.
            let wb = self.l2.access(addr, true);
            if wb.writeback {
                self.dram_accesses += 1;
            }
        }
        if l1.hit {
            return self.config.l1_latency;
        }
        let l2 = self.l2.access(addr, false);
        if l2.writeback {
            self.dram_accesses += 1;
        }
        if l2.hit {
            self.config.l2_latency
        } else {
            self.dram_accesses += 1;
            self.config.dram_latency
        }
    }

    /// Performs an instruction fetch and returns its latency in cycles.
    #[inline]
    pub fn access_instr(&mut self, addr: u32) -> u32 {
        let l1 = self.l1i.access(addr, false);
        if l1.hit {
            return self.config.l1_latency;
        }
        let l2 = self.l2.access(addr, false);
        if l2.writeback {
            self.dram_accesses += 1;
        }
        if l2.hit {
            self.config.l2_latency
        } else {
            self.dram_accesses += 1;
            self.config.dram_latency
        }
    }

    /// Records `extra` repeat fetches of the instruction line containing
    /// `addr`, each a guaranteed L1I hit at `l1_latency`.
    ///
    /// Companion to [`MemorySystem::access_instr`] for the superblock fast
    /// path: after fetching the first instruction of a straight-line group
    /// the line is resident, and interleaved block traffic cannot evict it
    /// — data accesses touch the L1D, never the L1I, and the follower
    /// fetches, being hits, never reach the shared L2 — so the remaining
    /// same-line fetches are hits by construction (and the L2 access
    /// order is exactly the stepped one). See [`Cache::count_hits`] for
    /// why the collapsed accounting is bit-identical to `extra` real
    /// accesses.
    pub fn count_instr_repeats(&mut self, addr: u32, extra: u64) {
        self.l1i.count_hits(addr, extra);
    }

    /// Accumulated statistics across all levels.
    pub fn stats(&self) -> MemoryStats {
        MemoryStats {
            l1i: self.l1i.stats(),
            l1d: self.l1d.stats(),
            l2: self.l2.stats(),
            dram_accesses: self.dram_accesses,
        }
    }

    /// Resets statistics but keeps cache contents warm.
    pub fn reset_stats(&mut self) {
        self.l1i.reset_stats();
        self.l1d.reset_stats();
        self.l2.reset_stats();
        self.dram_accesses = 0;
    }

    /// Makes `[base, base+len)` resident in the L2 (not the L1s) without
    /// charging statistics — the state a workload's inputs are in after
    /// the program's input phase produced them.
    pub fn warm_region(&mut self, base: u32, len: u32) {
        let line = self.config.l2.line_bytes;
        let mut addr = base & !(line - 1);
        while addr < base.saturating_add(len) {
            self.l2.warm(addr);
            addr += line;
        }
    }

    /// Invalidates every cache (cold restart).
    pub fn flush(&mut self) {
        self.l1i.flush();
        self.l1d.flush();
        self.l2.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latencies_by_level() {
        let mut sys = MemorySystem::new(MemoryConfig::default());
        let cfg = sys.config();
        // Cold: DRAM.
        assert_eq!(sys.access_data(0x8000, false), cfg.dram_latency);
        // Warm in L1.
        assert_eq!(sys.access_data(0x8000, false), cfg.l1_latency);
        // Evict from a tiny L1 to exercise the L2 path.
        let mut small = MemorySystem::new(MemoryConfig {
            l1d: CacheConfig::new(128, 64, 1),
            ..MemoryConfig::default()
        });
        small.access_data(0, false); // set 0, DRAM
        small.access_data(128, false); // set 0, evicts line 0 in L1, DRAM
        assert_eq!(small.access_data(0, false), small.config().l2_latency);
    }

    #[test]
    fn instruction_path_separate_from_data() {
        let mut sys = MemorySystem::new(MemoryConfig::default());
        sys.access_instr(0);
        sys.access_data(0, false);
        let s = sys.stats();
        assert_eq!(s.l1i.misses, 1);
        assert_eq!(s.l1d.misses, 1);
        // Second L2 access hits (shared line fetched by the instr path).
        assert_eq!(s.l2.hits, 1);
        assert_eq!(s.l2.misses, 1);
        assert_eq!(s.dram_accesses, 1);
    }

    #[test]
    fn dirty_writeback_reaches_l2() {
        let mut sys = MemorySystem::new(MemoryConfig {
            l1d: CacheConfig::new(64, 64, 1),
            ..MemoryConfig::default()
        });
        sys.access_data(0, true); // dirty line 0
        sys.access_data(64, false); // evicts dirty line -> L2 write
        let s = sys.stats();
        assert_eq!(s.l1d.writebacks, 1);
        assert!(s.l2.accesses() >= 3, "two refills plus one writeback");
    }

    #[test]
    fn instr_repeats_match_stepped_fetches() {
        let mut step = MemorySystem::new(MemoryConfig::default());
        let mut batched = MemorySystem::new(MemoryConfig::default());
        // Fetch a 4-instruction group on one 64B line the way the two
        // interpreter modes do: four accesses vs one access + 3 repeats.
        for pc in 0u32..4 {
            step.access_instr(pc * 4);
        }
        batched.access_instr(0);
        batched.count_instr_repeats(0, 3);
        assert_eq!(step.stats(), batched.stats());
    }

    #[test]
    fn flush_makes_cold() {
        let mut sys = MemorySystem::new(MemoryConfig::default());
        sys.access_data(0, false);
        sys.flush();
        assert_eq!(sys.access_data(0, false), sys.config().dram_latency);
    }

    #[test]
    fn reset_stats_keeps_contents() {
        let mut sys = MemorySystem::new(MemoryConfig::default());
        sys.access_data(0, false);
        sys.reset_stats();
        assert_eq!(sys.stats().l1d.accesses(), 0);
        assert_eq!(sys.access_data(0, false), sys.config().l1_latency);
    }
}
