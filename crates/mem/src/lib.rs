//! Memory hierarchy model: flat main memory plus set-associative LRU
//! caches with latency accounting.
//!
//! The hierarchy mirrors the paper's system setup (Table 4 of the
//! dissertation): 64 KB of L1 (split 32 KB I / 32 KB D), a 512 KB unified
//! L2, LRU replacement everywhere, and fixed hit/miss latencies. The
//! [`MemorySystem`] front-end returns the latency of each access in core
//! cycles and keeps per-level statistics, which feed both the CPU timing
//! model and the energy model.
//!
//! # Examples
//!
//! ```
//! use dsa_mem::{MainMemory, MemorySystem, MemoryConfig};
//!
//! let mut mem = MainMemory::new();
//! mem.write_u32(0x1000, 42);
//! assert_eq!(mem.read_u32(0x1000), 42);
//!
//! let mut sys = MemorySystem::new(MemoryConfig::default());
//! let cold = sys.access_data(0x1000, false);
//! let warm = sys.access_data(0x1000, false);
//! assert!(cold > warm); // first touch misses all the way to DRAM
//! ```

mod cache;
mod memory;
mod system;

pub use cache::{Cache, CacheConfig, CacheStats, Lookup};
pub use memory::{MainMemory, PAGE_BYTES};
pub use system::{MemoryConfig, MemorySystem, MemoryStats};
