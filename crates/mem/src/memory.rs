//! Flat, sparsely allocated main memory.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

const PAGE_SHIFT: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;

/// Bytes per allocation page — the granularity of [`MainMemory::pages`]
/// and [`MainMemory::load_page`] (snapshot capture/restore).
pub const PAGE_BYTES: usize = PAGE_SIZE;

/// Multiplicative (Fibonacci) hasher for page numbers. Page keys are
/// small, attacker-free integers, and every simulated memory access pays
/// one lookup — SipHash would dominate the cost of the functional
/// executor's loads and stores.
#[derive(Debug, Clone, Copy, Default)]
struct PageHasher(u64);

impl Hasher for PageHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
    }

    fn write_u32(&mut self, v: u32) {
        let h = (v as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        // Fold the high (well-mixed) bits into the low bits the table
        // indexes with.
        self.0 = h ^ (h >> 32);
    }
}

type PageMap = HashMap<u32, Box<[u8; PAGE_SIZE]>, BuildHasherDefault<PageHasher>>;

/// Byte-addressable main memory with a 32-bit address space, allocated
/// lazily in 4 KB pages. All multi-byte accesses are little-endian and may
/// straddle page boundaries.
#[derive(Debug, Clone, Default)]
pub struct MainMemory {
    pages: PageMap,
}

#[inline]
fn split(addr: u32) -> (u32, usize) {
    (addr >> PAGE_SHIFT, (addr as usize) & (PAGE_SIZE - 1))
}

impl MainMemory {
    /// Creates an empty (all-zero) memory.
    pub fn new() -> MainMemory {
        MainMemory::default()
    }

    /// Reads one byte.
    pub fn read_u8(&self, addr: u32) -> u8 {
        let (page, off) = split(addr);
        match self.pages.get(&page) {
            Some(p) => p[off],
            None => 0,
        }
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: u32, value: u8) {
        let (page, off) = split(addr);
        self.page_mut(page)[off] = value;
    }

    #[inline]
    fn page_mut(&mut self, page: u32) -> &mut [u8; PAGE_SIZE] {
        self.pages.entry(page).or_insert_with(|| Box::new([0u8; PAGE_SIZE]))
    }

    /// Reads `N` little-endian bytes in one page lookup when the access
    /// stays inside a page (the overwhelmingly common case — aligned
    /// accesses never straddle), byte-by-byte otherwise.
    #[inline]
    fn read_n<const N: usize>(&self, addr: u32) -> [u8; N] {
        let (page, off) = split(addr);
        if off + N <= PAGE_SIZE {
            match self.pages.get(&page) {
                Some(p) => {
                    let mut out = [0u8; N];
                    out.copy_from_slice(&p[off..off + N]);
                    out
                }
                None => [0u8; N],
            }
        } else {
            core::array::from_fn(|i| self.read_u8(addr.wrapping_add(i as u32)))
        }
    }

    /// Writes `N` little-endian bytes in one page lookup when the access
    /// stays inside a page, byte-by-byte otherwise.
    #[inline]
    fn write_n<const N: usize>(&mut self, addr: u32, bytes: [u8; N]) {
        let (page, off) = split(addr);
        if off + N <= PAGE_SIZE {
            self.page_mut(page)[off..off + N].copy_from_slice(&bytes);
        } else {
            for (i, b) in bytes.into_iter().enumerate() {
                self.write_u8(addr.wrapping_add(i as u32), b);
            }
        }
    }

    /// Reads a little-endian 16-bit value.
    pub fn read_u16(&self, addr: u32) -> u16 {
        u16::from_le_bytes(self.read_n(addr))
    }

    /// Writes a little-endian 16-bit value.
    pub fn write_u16(&mut self, addr: u32, value: u16) {
        self.write_n(addr, value.to_le_bytes());
    }

    /// Reads a little-endian 32-bit value.
    pub fn read_u32(&self, addr: u32) -> u32 {
        u32::from_le_bytes(self.read_n(addr))
    }

    /// Writes a little-endian 32-bit value.
    pub fn write_u32(&mut self, addr: u32, value: u32) {
        self.write_n(addr, value.to_le_bytes());
    }

    /// Reads a 32-bit value as a float (bit reinterpretation).
    pub fn read_f32(&self, addr: u32) -> f32 {
        f32::from_bits(self.read_u32(addr))
    }

    /// Writes a float by its bit pattern.
    pub fn write_f32(&mut self, addr: u32, value: f32) {
        self.write_u32(addr, value.to_bits());
    }

    /// Reads 16 contiguous bytes (one vector register).
    pub fn read_vec128(&self, addr: u32) -> [u8; 16] {
        self.read_n(addr)
    }

    /// Writes 16 contiguous bytes (one vector register).
    pub fn write_vec128(&mut self, addr: u32, bytes: [u8; 16]) {
        self.write_n(addr, bytes);
    }

    /// Copies a byte slice into memory starting at `addr`.
    pub fn write_bytes(&mut self, addr: u32, bytes: &[u8]) {
        for (i, &b) in bytes.iter().enumerate() {
            self.write_u8(addr.wrapping_add(i as u32), b);
        }
    }

    /// Reads `len` bytes starting at `addr`.
    pub fn read_bytes(&self, addr: u32, len: usize) -> Vec<u8> {
        (0..len).map(|i| self.read_u8(addr.wrapping_add(i as u32))).collect()
    }

    /// Number of pages that have been touched by a write.
    pub fn allocated_pages(&self) -> usize {
        self.pages.len()
    }

    /// Every allocated page as `(page number, contents)`, sorted by page
    /// number — the canonical order used by snapshot serialization, so
    /// two memories with identical contents always serialize to
    /// identical bytes regardless of allocation order.
    pub fn pages(&self) -> Vec<(u32, &[u8; PAGE_BYTES])> {
        let mut pages: Vec<(u32, &[u8; PAGE_BYTES])> =
            self.pages.iter().map(|(&k, p)| (k, &**p)).collect();
        pages.sort_unstable_by_key(|&(k, _)| k);
        pages
    }

    /// Installs one full page (snapshot restore). Replaces any existing
    /// contents of that page.
    pub fn load_page(&mut self, page: u32, bytes: &[u8; PAGE_BYTES]) {
        self.pages.insert(page, Box::new(*bytes));
    }

    /// A stable 64-bit digest of all allocated contents, used by tests to
    /// compare final memory states between scalar and vectorised runs.
    pub fn digest(&self) -> u64 {
        // FNV-1a over (page number, page bytes) in page-number order.
        let mut keys: Vec<_> = self.pages.keys().copied().collect();
        keys.sort_unstable();
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |b: u8| {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        for k in keys {
            for b in k.to_le_bytes() {
                mix(b);
            }
            for &b in self.pages[&k].iter() {
                mix(b);
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_initialised() {
        let m = MainMemory::new();
        assert_eq!(m.read_u32(0xdead_beef), 0);
        assert_eq!(m.allocated_pages(), 0);
    }

    #[test]
    fn little_endian_roundtrip() {
        let mut m = MainMemory::new();
        m.write_u32(0x100, 0x1234_5678);
        assert_eq!(m.read_u8(0x100), 0x78);
        assert_eq!(m.read_u8(0x103), 0x12);
        assert_eq!(m.read_u16(0x100), 0x5678);
        assert_eq!(m.read_u32(0x100), 0x1234_5678);
    }

    #[test]
    fn cross_page_access() {
        let mut m = MainMemory::new();
        let addr = (1 << 12) - 2; // straddles page 0 / page 1
        m.write_u32(addr, 0xA1B2_C3D4);
        assert_eq!(m.read_u32(addr), 0xA1B2_C3D4);
        assert_eq!(m.allocated_pages(), 2);
    }

    #[test]
    fn float_roundtrip() {
        let mut m = MainMemory::new();
        m.write_f32(64, 3.25);
        assert_eq!(m.read_f32(64), 3.25);
    }

    #[test]
    fn vec128_roundtrip() {
        let mut m = MainMemory::new();
        let data: [u8; 16] = core::array::from_fn(|i| i as u8);
        m.write_vec128(4094, data); // straddles pages
        assert_eq!(m.read_vec128(4094), data);
    }

    #[test]
    fn bulk_bytes() {
        let mut m = MainMemory::new();
        m.write_bytes(10, &[1, 2, 3, 4]);
        assert_eq!(m.read_bytes(10, 4), vec![1, 2, 3, 4]);
    }

    #[test]
    fn pages_roundtrip_sorted() {
        let mut m = MainMemory::new();
        m.write_u32(5 << 12, 0xAA); // page 5 first
        m.write_u32(1 << 12, 0xBB);
        let pages = m.pages();
        assert_eq!(pages.len(), 2);
        assert!(pages[0].0 < pages[1].0, "pages are sorted");
        let mut copy = MainMemory::new();
        for (k, p) in pages {
            copy.load_page(k, p);
        }
        assert_eq!(copy.digest(), m.digest());
        assert_eq!(copy.read_u32(5 << 12), 0xAA);
    }

    #[test]
    fn digest_tracks_content() {
        let mut a = MainMemory::new();
        let mut b = MainMemory::new();
        a.write_u32(0, 7);
        b.write_u32(0, 7);
        assert_eq!(a.digest(), b.digest());
        b.write_u8(1000, 1);
        assert_ne!(a.digest(), b.digest());
    }
}
